"""Batched ingestion: equivalence, atomicity, and the bulk() protocol.

Three claims are pinned here:

1. **Equivalence** -- an ``append_many`` batch stores exactly what the
   same rows stored one ``insert`` at a time would (same surrogates,
   same consecutive transaction stamps, same attribute partitions).
2. **Atomicity** -- a rejected batch leaves the relation *byte
   identical*: storage contents, backlog operations, version counter,
   constraint-monitor state, and (for the log-file engine) the on-disk
   log are all exactly as before the attempt, on every engine.
3. **Protocol** -- :meth:`TemporalRelation.bulk` commits on clean exit,
   stores nothing when the block raises, and refuses double commits.
"""

from __future__ import annotations

import os

import pytest

from repro.chronos.clock import LogicalClock
from repro.chronos.timestamp import Timestamp
from repro.core.constraints import ConstraintViolation
from repro.relation.errors import KeyViolation, SchemaError
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation
from repro.storage.logfile import LogFileEngine
from repro.storage.sqlite_backend import SQLiteEngine


def make_relation(specializations=(), engine=None, **schema_kwargs):
    schema = TemporalSchema(
        name="bulk",
        time_varying=("reading",),
        specializations=list(specializations),
        **schema_kwargs,
    )
    return TemporalRelation(schema, clock=LogicalClock(start=100), engine=engine)


ROWS = [
    ("alpha", Timestamp(10), {"reading": 1}),
    ("beta", Timestamp(40), {"reading": 2}),
    ("alpha", Timestamp(25), {"reading": 3}),
]


def snapshot(relation):
    """Everything observable about a relation, for exact comparison."""
    return (
        [
            (
                e.element_surrogate,
                e.object_surrogate,
                e.tt_start,
                e.tt_stop,
                e.vt,
                dict(e.time_invariant),
                dict(e.time_varying),
                dict(e.user_times),
            )
            for e in relation.all_elements()
        ],
        [
            (op.kind, op.tt, op.element_surrogate)
            for op in relation.backlog().operations
        ],
        relation.version,
        relation.statistics(),
    )


class TestEquivalence:
    def test_batch_equals_insert_sequence(self):
        batched = make_relation()
        batched.append_many(ROWS)
        singles = make_relation()
        for object_surrogate, vt, attributes in ROWS:
            singles.insert(object_surrogate, vt, attributes)
        # Contents and operation log are identical; only the version
        # counter differs (one bump for the batch, three for singles).
        assert snapshot(batched)[:2] == snapshot(singles)[:2]
        assert batched.version == 1 and singles.version == 3

    def test_batch_stamps_are_consecutive(self):
        relation = make_relation()
        elements = relation.append_many(ROWS)
        assert [e.tt_start for e in elements] == [
            Timestamp(100), Timestamp(101), Timestamp(102)
        ]
        assert [e.element_surrogate for e in elements] == [1, 2, 3]

    def test_two_element_rows_default_attributes(self):
        relation = make_relation()
        (element,) = relation.append_many([("alpha", Timestamp(5))])
        assert element.time_varying == {}
        assert element.time_invariant == {}

    def test_empty_batch_returns_empty_and_bumps_nothing(self):
        relation = make_relation()
        before = snapshot(relation)
        assert relation.append_many([]) == []
        assert snapshot(relation) == before

    def test_attribute_dicts_are_not_shared_between_elements(self):
        relation = make_relation()
        elements = relation.append_many(
            [("a", Timestamp(1)), ("b", Timestamp(2))]
        )
        assert elements[0].time_varying is not elements[1].time_varying

    def test_undeclared_attribute_raises_the_canonical_error(self):
        relation = make_relation()
        with pytest.raises(SchemaError):
            relation.append_many([("a", Timestamp(1), {"bogus": 1})])
        assert len(relation) == 0

    def test_bad_valid_time_kind_raises_the_canonical_error(self):
        relation = make_relation()
        with pytest.raises(SchemaError):
            relation.append_many([("a", 17, {"reading": 1})])
        assert len(relation) == 0


class TestRejectedBatchAtomicity:
    #: The second row violates ``retroactive`` (vt far beyond any tt).
    POISONED = [
        ("alpha", Timestamp(10), {"reading": 1}),
        ("beta", Timestamp(10**9), {"reading": 2}),
        ("gamma", Timestamp(20), {"reading": 3}),
    ]

    def test_memory_state_is_byte_identical_after_rejection(self):
        relation = make_relation(["retroactive"])
        relation.insert("seed", Timestamp(50), {"reading": 0})
        before = snapshot(relation)
        with pytest.raises(ConstraintViolation):
            relation.append_many(self.POISONED)
        assert snapshot(relation) == before

    def test_sqlite_state_is_byte_identical_after_rejection(self):
        relation = make_relation(["retroactive"], engine=SQLiteEngine())
        relation.insert("seed", Timestamp(50), {"reading": 0})
        before = snapshot(relation)
        dump_before = list(relation.engine._connection.iterdump())
        with pytest.raises(ConstraintViolation):
            relation.append_many(self.POISONED)
        assert snapshot(relation) == before
        assert list(relation.engine._connection.iterdump()) == dump_before

    def test_logfile_log_is_byte_identical_after_rejection(self, tmp_path):
        engine = LogFileEngine(os.path.join(str(tmp_path), "bulk.jsonl"))
        relation = make_relation(["retroactive"], engine=engine)
        relation.insert("seed", Timestamp(50), {"reading": 0})
        before = snapshot(relation)
        bytes_before = engine.log_bytes()
        with pytest.raises(ConstraintViolation):
            relation.append_many(self.POISONED)
        assert snapshot(relation) == before
        assert engine.log_bytes() == bytes_before
        engine.close()

    def test_monitors_are_not_polluted_by_a_rejected_batch(self):
        relation = make_relation(["globally non-decreasing", "retroactive"])
        relation.insert("o", Timestamp(50), {"reading": 0})
        with pytest.raises(ConstraintViolation):
            # vt = 90 would raise the non-decreasing monitor's maximum
            # before vt = 10**9 fails retroactivity -- neither may stick.
            relation.append_many(
                [("o", Timestamp(90), None), ("o", Timestamp(10**9), None)]
            )
        # 40 < 50 must still be rejected (true maximum survived) ...
        with pytest.raises(ConstraintViolation):
            relation.insert("o", Timestamp(40), {})
        # ... and 55 >= 50 accepted (the rejected 90 did NOT stick).
        relation.insert("o", Timestamp(55), {})

    def test_within_batch_sequenced_key_violation_rejects_whole_batch(self):
        relation = make_relation(
            time_invariant=("name",), key=("name",)
        )
        before = snapshot(relation)
        with pytest.raises(KeyViolation):
            relation.append_many(
                [
                    ("a", Timestamp(10), {"name": "x", "reading": 1}),
                    ("b", Timestamp(10), {"name": "x", "reading": 2}),
                ]
            )
        assert snapshot(relation) == before

    def test_batch_sequenced_key_checked_against_stored_state(self):
        relation = make_relation(time_invariant=("name",), key=("name",))
        relation.insert("a", Timestamp(10), {"name": "x"})
        with pytest.raises(KeyViolation):
            relation.append_many([("b", Timestamp(10), {"name": "x"})])
        assert len(relation) == 1

    def test_gc_is_reenabled_after_a_rejected_batch(self):
        import gc

        relation = make_relation(["retroactive"])
        assert gc.isenabled()
        with pytest.raises(ConstraintViolation):
            relation.append_many(self.POISONED)
        assert gc.isenabled()


class TestBulkContextManager:
    def test_clean_exit_commits_one_atomic_batch(self):
        relation = make_relation()
        with relation.bulk() as batch:
            batch.insert("alpha", Timestamp(10), {"reading": 1})
            batch.insert("beta", Timestamp(20), {"reading": 2})
            assert len(batch) == 2
            assert len(relation) == 0  # nothing stored inside the block
        assert len(relation) == 2
        assert [e.object_surrogate for e in batch.elements] == ["alpha", "beta"]
        assert relation.version == 1  # ONE bump for the whole batch

    def test_exception_inside_the_block_stores_nothing(self):
        relation = make_relation()
        with pytest.raises(RuntimeError):
            with relation.bulk() as batch:
                batch.insert("alpha", Timestamp(10), {"reading": 1})
                raise RuntimeError("abandon the batch")
        assert len(relation) == 0
        assert relation.version == 0

    def test_constraint_violation_at_commit_stores_nothing(self):
        relation = make_relation(["retroactive"])
        with pytest.raises(ConstraintViolation):
            with relation.bulk() as batch:
                batch.insert("alpha", Timestamp(10**9), {"reading": 1})
        assert len(relation) == 0

    def test_double_commit_is_rejected(self):
        relation = make_relation()
        with relation.bulk() as batch:
            batch.insert("alpha", Timestamp(10), {"reading": 1})
        with pytest.raises(SchemaError):
            batch.commit()
        with pytest.raises(SchemaError):
            batch.insert("beta", Timestamp(20), {"reading": 2})
        assert len(relation) == 1
