"""Tests for the attribute-value-stamped view [Gad88]."""

import pytest

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.duration import Duration
from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.relation.attribute_view import attribute_histories, snapshot_at
from repro.relation.schema import TemporalSchema, ValidTimeKind
from repro.relation.temporal_relation import TemporalRelation


@pytest.fixture
def employee_relation():
    """The paper's example: an element may record both the title and the
    salary of an employee."""
    schema = TemporalSchema(
        name="employees",
        valid_time_kind=ValidTimeKind.INTERVAL,
        time_varying=("title", "salary"),
        enforce_key=False,
    )
    clock = SimulatedWallClock(start=1_000)
    relation = TemporalRelation(schema, clock=clock)
    relation.insert(
        "alice", Interval(Timestamp(0), Timestamp(50)), {"title": "engineer", "salary": 10}
    )
    clock.advance(Duration(1))
    relation.insert(
        "alice", Interval(Timestamp(50), Timestamp(90)), {"title": "engineer", "salary": 12}
    )
    clock.advance(Duration(1))
    relation.insert(
        "alice", Interval(Timestamp(90), Timestamp(120)), {"title": "manager", "salary": 15}
    )
    return relation


class TestAttributeHistories:
    def test_equal_values_coalesce_across_tuples(self, employee_relation):
        histories = {
            h.attribute: h for h in attribute_histories(employee_relation)
        }
        title = histories["title"]
        values = dict(title.values)
        # "engineer" held over two adjacent tuples -> one merged interval.
        assert values["engineer"].intervals == (
            Interval(Timestamp(0), Timestamp(90)),
        )
        assert values["manager"].intervals == (
            Interval(Timestamp(90), Timestamp(120)),
        )

    def test_salary_keeps_three_values(self, employee_relation):
        histories = {h.attribute: h for h in attribute_histories(employee_relation)}
        assert len(histories["salary"].values) == 3

    def test_value_at(self, employee_relation):
        histories = {h.attribute: h for h in attribute_histories(employee_relation)}
        assert histories["title"].value_at(Timestamp(70)) == "engineer"
        assert histories["title"].value_at(Timestamp(95)) == "manager"
        assert histories["title"].value_at(Timestamp(500)) is None

    def test_recorded_period(self, employee_relation):
        histories = {h.attribute: h for h in attribute_histories(employee_relation)}
        assert histories["title"].recorded_period().span() == Interval(
            Timestamp(0), Timestamp(120)
        )

    def test_rollback_state_view(self, employee_relation):
        # As of the first transaction only the first tuple existed.
        first_tt = employee_relation.all_elements()[0].tt_start
        histories = attribute_histories(employee_relation, as_of_tt=first_tt)
        titles = {h.attribute: h for h in histories}["title"]
        assert dict(titles.values)["engineer"].intervals == (
            Interval(Timestamp(0), Timestamp(50)),
        )

    def test_objects_kept_apart(self, employee_relation):
        clock = employee_relation.clock
        clock.advance(Duration(1))
        employee_relation.insert(
            "bob", Interval(Timestamp(0), Timestamp(10)), {"title": "intern", "salary": 1}
        )
        histories = attribute_histories(employee_relation)
        owners = {h.object_surrogate for h in histories}
        assert owners == {"alice", "bob"}


class TestSnapshotRoundTrip:
    def test_snapshot_matches_tuple_view(self, employee_relation):
        snapshot = snapshot_at(employee_relation, Timestamp(95))
        assert snapshot == {"alice": {"title": "manager", "salary": 15}}

    def test_snapshot_empty_outside_history(self, employee_relation):
        assert snapshot_at(employee_relation, Timestamp(10**6)) == {}

    def test_event_relation_view(self):
        schema = TemporalSchema(name="readings", time_varying=("v",))
        clock = SimulatedWallClock(start=0)
        relation = TemporalRelation(schema, clock=clock)
        relation.insert("s", Timestamp(10), {"v": 1})
        histories = attribute_histories(relation)
        assert histories[0].value_at(Timestamp(10)) == 1
        assert histories[0].value_at(Timestamp(11)) is None
