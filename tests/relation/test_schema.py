"""Unit tests for temporal schemas."""

import pytest

from repro.chronos.granularity import Granularity
from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.core.taxonomy.event_isolated import Retroactive
from repro.relation.errors import SchemaError
from repro.relation.schema import AttributeRole, TemporalSchema, ValidTimeKind


class TestConstruction:
    def test_minimal(self):
        schema = TemporalSchema(name="log")
        assert schema.is_event
        assert schema.granularity is Granularity.SECOND
        assert schema.specializations == ()

    def test_specializations_parsed_from_strings(self):
        schema = TemporalSchema(
            name="samples", specializations=["retroactive", "delayed retroactive(30s)"]
        )
        assert [spec.name for spec in schema.specializations] == [
            "retroactive",
            "delayed retroactive",
        ]

    def test_specialization_instances_accepted(self):
        schema = TemporalSchema(name="samples", specializations=[Retroactive()])
        assert schema.specialization_names() == ["retroactive"]

    def test_granularity_by_name(self):
        schema = TemporalSchema(name="x", granularity="minute")
        assert schema.granularity is Granularity.MINUTE

    def test_duplicate_attribute_roles_rejected(self):
        with pytest.raises(SchemaError, match="declared both"):
            TemporalSchema(name="x", time_invariant=("a",), time_varying=("a",))

    def test_key_must_be_time_invariant(self):
        with pytest.raises(SchemaError, match="time-invariant"):
            TemporalSchema(name="x", key=("salary",), time_varying=("salary",))
        schema = TemporalSchema(name="x", key=("ssn",), time_invariant=("ssn",))
        assert schema.key == ("ssn",)


class TestValueChecking:
    def test_check_valid_time_event(self):
        schema = TemporalSchema(name="x", valid_time_kind=ValidTimeKind.EVENT)
        schema.check_valid_time(Timestamp(5))
        with pytest.raises(SchemaError, match="event-stamped"):
            schema.check_valid_time(Interval(Timestamp(0), Timestamp(5)))

    def test_check_valid_time_interval(self):
        schema = TemporalSchema(name="x", valid_time_kind=ValidTimeKind.INTERVAL)
        schema.check_valid_time(Interval(Timestamp(0), Timestamp(5)))
        with pytest.raises(SchemaError, match="interval-stamped"):
            schema.check_valid_time(Timestamp(5))

    def test_split_attributes(self):
        schema = TemporalSchema(
            name="x",
            time_invariant=("ssn",),
            time_varying=("salary",),
            user_times=("signed",),
        )
        invariant, varying, user = schema.split_attributes(
            {"ssn": "1", "salary": 9, "signed": Timestamp(4)}
        )
        assert invariant == {"ssn": "1"}
        assert varying == {"salary": 9}
        assert user == {"signed": Timestamp(4)}

    def test_undeclared_attribute_rejected(self):
        schema = TemporalSchema(name="x", time_varying=("salary",))
        with pytest.raises(SchemaError, match="not declared"):
            schema.split_attributes({"title": "dr"})

    def test_user_time_must_be_timestamp(self):
        schema = TemporalSchema(name="x", user_times=("signed",))
        with pytest.raises(SchemaError, match="must be a Timestamp"):
            schema.split_attributes({"signed": 12})

    def test_role_of(self):
        schema = TemporalSchema(
            name="x", time_invariant=("a",), time_varying=("b",), user_times=("c",)
        )
        assert schema.role_of("a") is AttributeRole.TIME_INVARIANT
        assert schema.role_of("b") is AttributeRole.TIME_VARYING
        assert schema.role_of("c") is AttributeRole.USER_TIME
        assert schema.role_of("zzz") is None

    def test_key_of(self):
        schema = TemporalSchema(name="x", key=("ssn",), time_invariant=("ssn", "race"))
        assert schema.key_of({"ssn": "123", "race": "?"}) == ("123",)
        with pytest.raises(SchemaError, match="missing key"):
            schema.key_of({"race": "?"})
