"""Stateful model-based testing of the temporal relation.

A hypothesis state machine drives a :class:`TemporalRelation` through
random insert / logical-delete / modify sequences while maintaining a
plain-Python reference model of every historical state.  Invariants
checked after every step:

* the current state matches the model;
* rollback at every past transaction time matches the model's recorded
  state sequence (stepwise-constant semantics, Section 2);
* element surrogates are never reused;
* the backlog view reconstructs exactly the same states.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.duration import Duration
from repro.chronos.timestamp import Timestamp
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation


class TemporalRelationMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.clock = SimulatedWallClock(start=0)
        schema = TemporalSchema(name="model", time_varying=("v",), enforce_key=False)
        self.relation = TemporalRelation(schema, clock=self.clock)
        #: tt microseconds -> frozenset of live surrogates after that txn
        self.state_history = {}
        self.live = set()
        self.all_surrogates = set()

    def _record(self, tt):
        self.state_history[tt.microseconds] = frozenset(self.live)

    @rule(vt_offset=st.integers(-50, 50), advance=st.integers(1, 20), v=st.integers())
    def insert(self, vt_offset, advance, v):
        self.clock.advance(Duration(advance))
        tt_before = self.clock.peek()
        element = self.relation.insert(
            "obj", Timestamp(tt_before.ticks + vt_offset), {"v": v}
        )
        assert element.element_surrogate not in self.all_surrogates, "surrogate reuse"
        self.all_surrogates.add(element.element_surrogate)
        self.live.add(element.element_surrogate)
        self._record(element.tt_start)

    @precondition(lambda self: self.live)
    @rule(advance=st.integers(1, 20), which=st.integers(0, 10**6))
    def delete(self, advance, which):
        self.clock.advance(Duration(advance))
        victim = sorted(self.live)[which % len(self.live)]
        closed = self.relation.delete(victim)
        self.live.discard(victim)
        self._record(closed.tt_stop)

    @precondition(lambda self: self.live)
    @rule(advance=st.integers(1, 20), which=st.integers(0, 10**6), v=st.integers())
    def modify(self, advance, which, v):
        self.clock.advance(Duration(advance))
        old = sorted(self.live)[which % len(self.live)]
        replacement = self.relation.modify(old, attributes={"v": v})
        assert replacement.element_surrogate not in self.all_surrogates, "surrogate reuse"
        self.all_surrogates.add(replacement.element_surrogate)
        self.live.discard(old)
        self.live.add(replacement.element_surrogate)
        self._record(replacement.tt_start)

    @invariant()
    def current_state_matches_model(self):
        observed = {e.element_surrogate for e in self.relation.current()}
        assert observed == self.live

    @invariant()
    def rollback_matches_every_recorded_state(self):
        for tt_micro, expected in self.state_history.items():
            stamp = Timestamp(tt_micro, "microsecond")
            observed = frozenset(
                e.element_surrogate for e in self.relation.as_of(stamp)
            )
            assert observed == expected, f"rollback mismatch at tt={tt_micro}"

    @invariant()
    def backlog_agrees_with_engine(self):
        backlog = self.relation.backlog()
        for tt_micro, expected in self.state_history.items():
            stamp = Timestamp(tt_micro, "microsecond")
            assert frozenset(backlog.state_at(stamp)) == expected

    @invariant()
    def stepwise_constant_between_transactions(self):
        # Probe one microsecond after each transaction: the state must
        # be unchanged until the next transaction.
        recorded = sorted(self.state_history)
        for tt_micro in recorded:
            probe = Timestamp(tt_micro + 1, "microsecond")
            observed = frozenset(
                e.element_surrogate for e in self.relation.as_of(probe)
            )
            assert observed == self.state_history[tt_micro]


TestTemporalRelationModel = TemporalRelationMachine.TestCase
TestTemporalRelationModel.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
