"""Regression tests: rejected updates leave NO trace anywhere.

These pin the two-phase monitor protocol and the validate-before-mutate
ordering in insert / delete / modify: after a ConstraintViolation the
relation's storage, backlog, constraint-monitor state, and surrogate
visibility must all behave as if the update had never been attempted.
"""

import pytest

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.duration import Duration
from repro.chronos.timestamp import Timestamp
from repro.core.constraints import ConstraintSet, ConstraintViolation
from repro.core.taxonomy.base import Stamped, TimeReference
from repro.core.taxonomy.event_inter import (
    GloballyNonDecreasing,
    GloballySequential,
    TransactionTimeEventRegular,
)
from repro.core.taxonomy.event_isolated import Retroactive
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation


def stamped(tt: int, vt: int) -> Stamped:
    return Stamped(tt_start=Timestamp(tt), vt=Timestamp(vt))


class TestMonitorStateAfterRejection:
    def test_rejected_element_does_not_move_sequential_peak(self):
        """A rejected insert with a huge valid time must not raise the
        sequential monitor's running maximum."""
        constraints = ConstraintSet([GloballySequential()])
        constraints.observe(stamped(10, 15))  # peak = 15
        # Rejected: min(tt, vt) = 12 < 15, although vt is enormous.
        with pytest.raises(ConstraintViolation):
            constraints.observe(stamped(20, 12))
        # Had the rejected element polluted the peak (to 20), this
        # compliant element (min = 16 >= 15) would be wrongly rejected.
        assert constraints.observe(stamped(21, 16)) == []

    def test_rejected_element_does_not_set_regularity_anchor(self):
        constraints = ConstraintSet(
            [TransactionTimeEventRegular(Duration(10)), Retroactive()]
        )
        # Rejected by the retroactive constraint -- must not become the
        # regularity anchor either.
        with pytest.raises(ConstraintViolation):
            constraints.observe(stamped(7, 99))
        # Anchor should now be 10; 20 and 30 are compliant multiples.
        constraints.observe(stamped(10, 5))
        assert constraints.observe(stamped(20, 15)) == []
        assert constraints.observe(stamped(30, 25)) == []

    def test_rejected_element_does_not_enter_strict_vt_list(self):
        from repro.core.taxonomy.event_inter import StrictValidTimeEventRegular

        constraints = ConstraintSet(
            [StrictValidTimeEventRegular(Duration(10)), Retroactive()]
        )
        constraints.observe(stamped(10, 0))
        with pytest.raises(ConstraintViolation):
            constraints.observe(stamped(20, 30))  # violates retroactive
        # vt = 10 is the correct next step from 0; had the rejected
        # vt = 30 been inserted, this would report a broken gap.
        assert constraints.observe(stamped(40, 10)) == []


class TestRelationStateAfterRejection:
    def build(self, specs, **schema_kwargs):
        schema = TemporalSchema(name="r", specializations=specs, **schema_kwargs)
        clock = SimulatedWallClock(start=100)
        return TemporalRelation(schema, clock=clock), clock

    def test_rejected_insert_leaves_everything_unchanged(self):
        relation, clock = self.build(["retroactive", "globally non-decreasing"])
        relation.insert("o", Timestamp(50), {})
        clock.advance(Duration(10))
        with pytest.raises(ConstraintViolation):
            relation.insert("o", Timestamp(10**9), {})
        assert len(relation) == 1
        assert len(relation.backlog()) == 1
        # Monitors unpolluted: a compliant insert still passes.
        clock.advance(Duration(10))
        relation.insert("o", Timestamp(60), {})
        assert len(relation) == 2

    def test_rejected_deletion_keeps_element_current(self):
        relation, clock = self.build(
            [Retroactive(time_reference=TimeReference.DELETION)]
        )
        element = relation.insert("o", Timestamp(10**6), {})  # far future fact
        clock.advance(Duration(10))
        # Deleting now would make the element deletion-non-retroactive.
        with pytest.raises(ConstraintViolation):
            relation.delete(element.element_surrogate)
        assert relation.engine.get(element.element_surrogate).is_current
        assert len(relation.backlog()) == 1  # no delete recorded

    def test_rejected_modification_is_fully_rolled_back(self):
        relation, clock = self.build(["retroactive"])
        element = relation.insert("o", Timestamp(50), {})
        clock.advance(Duration(10))
        with pytest.raises(ConstraintViolation):
            relation.modify(element.element_surrogate, vt=Timestamp(10**9))
        stored = relation.engine.get(element.element_surrogate)
        assert stored.is_current  # the old element was NOT closed
        assert len(relation) == 1  # no replacement appended
        assert len(relation.backlog()) == 1
        # And the element can still be modified compliantly.
        replacement = relation.modify(element.element_surrogate, vt=Timestamp(60))
        assert replacement.is_current

    def test_rejected_modification_does_not_pollute_ordering_monitor(self):
        relation, clock = self.build(["globally non-decreasing", "retroactive"])
        first = relation.insert("o", Timestamp(50), {})
        clock.advance(Duration(10))
        with pytest.raises(ConstraintViolation):
            relation.modify(first.element_surrogate, vt=Timestamp(10**9))
        clock.advance(Duration(10))
        # vt = 55 >= 50 is compliant; a polluted monitor (max = 10^9)
        # would accept it anyway, but a polluted one from the failed
        # modify would also have closed `first` -- covered above.  Here
        # we check the inverse: vt = 40 must still be REJECTED against
        # the true maximum of 50, proving the monitor still has 50.
        with pytest.raises(ConstraintViolation):
            relation.insert("o", Timestamp(40), {})
        relation.insert("o", Timestamp(55), {})


class TestObserveStillCommitsInPermissiveModes:
    def test_record_mode_commits_violating_elements(self):
        from repro.core.constraints import EnforcementMode

        constraints = ConstraintSet(
            [GloballyNonDecreasing()], mode=EnforcementMode.RECORD
        )
        constraints.observe(stamped(1, 100))
        found = constraints.observe(stamped(2, 50))  # violation, recorded
        assert len(found) == 1
        # In RECORD mode the violating element IS stored, so it becomes
        # part of the stream the monitor tracks: max stays 100.
        assert constraints.observe(stamped(3, 99)) != []  # 99 < 100 violates
