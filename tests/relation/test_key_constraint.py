"""Tests for the sequenced time-invariant key constraint [NA89]."""

import pytest

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.duration import Duration
from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.relation.errors import KeyViolation
from repro.relation.schema import TemporalSchema, ValidTimeKind
from repro.relation.temporal_relation import TemporalRelation


@pytest.fixture
def clock():
    return SimulatedWallClock(start=100)


def event_relation(clock, enforce_key=True):
    schema = TemporalSchema(
        name="salaries",
        key=("ssn",),
        time_invariant=("ssn",),
        time_varying=("salary",),
        enforce_key=enforce_key,
    )
    return TemporalRelation(schema, clock=clock)


def interval_relation(clock):
    schema = TemporalSchema(
        name="titles",
        valid_time_kind=ValidTimeKind.INTERVAL,
        key=("ssn",),
        time_invariant=("ssn",),
        time_varying=("title",),
    )
    return TemporalRelation(schema, clock=clock)


class TestEventKey:
    def test_same_key_same_instant_rejected(self, clock):
        relation = event_relation(clock)
        relation.insert("alice", Timestamp(50), {"ssn": "123", "salary": 10})
        clock.advance(Duration(1))
        with pytest.raises(KeyViolation, match="123"):
            relation.insert("alice2", Timestamp(50), {"ssn": "123", "salary": 20})
        assert len(relation) == 1  # nothing stored

    def test_same_key_different_instant_allowed(self, clock):
        relation = event_relation(clock)
        relation.insert("alice", Timestamp(50), {"ssn": "123", "salary": 10})
        clock.advance(Duration(1))
        relation.insert("alice", Timestamp(60), {"ssn": "123", "salary": 11})
        assert len(relation) == 2

    def test_different_keys_same_instant_allowed(self, clock):
        relation = event_relation(clock)
        relation.insert("alice", Timestamp(50), {"ssn": "123", "salary": 10})
        clock.advance(Duration(1))
        relation.insert("bob", Timestamp(50), {"ssn": "456", "salary": 10})
        assert len(relation) == 2

    def test_deleted_element_frees_the_key(self, clock):
        relation = event_relation(clock)
        element = relation.insert("alice", Timestamp(50), {"ssn": "123", "salary": 10})
        clock.advance(Duration(1))
        relation.delete(element.element_surrogate)
        clock.advance(Duration(1))
        relation.insert("alice", Timestamp(50), {"ssn": "123", "salary": 12})
        assert len(relation.current()) == 1

    def test_enforcement_can_be_disabled(self, clock):
        relation = event_relation(clock, enforce_key=False)
        relation.insert("a", Timestamp(50), {"ssn": "123"})
        clock.advance(Duration(1))
        relation.insert("b", Timestamp(50), {"ssn": "123"})
        assert len(relation) == 2


class TestIntervalKey:
    def test_overlapping_intervals_rejected(self, clock):
        relation = interval_relation(clock)
        relation.insert(
            "alice", Interval(Timestamp(0), Timestamp(50)), {"ssn": "123", "title": "dr"}
        )
        clock.advance(Duration(1))
        with pytest.raises(KeyViolation):
            relation.insert(
                "alice",
                Interval(Timestamp(40), Timestamp(90)),
                {"ssn": "123", "title": "prof"},
            )

    def test_meeting_intervals_allowed(self, clock):
        relation = interval_relation(clock)
        relation.insert(
            "alice", Interval(Timestamp(0), Timestamp(50)), {"ssn": "123", "title": "dr"}
        )
        clock.advance(Duration(1))
        relation.insert(
            "alice",
            Interval(Timestamp(50), Timestamp(90)),
            {"ssn": "123", "title": "prof"},
        )
        assert len(relation) == 2


class TestModifyInteraction:
    def test_modify_does_not_conflict_with_itself(self, clock):
        relation = event_relation(clock)
        element = relation.insert("alice", Timestamp(50), {"ssn": "123", "salary": 10})
        clock.advance(Duration(1))
        replacement = relation.modify(element.element_surrogate, attributes={"salary": 11})
        assert replacement.attributes["salary"] == 11

    def test_modify_into_conflict_rejected(self, clock):
        relation = event_relation(clock)
        relation.insert("alice", Timestamp(50), {"ssn": "123", "salary": 10})
        clock.advance(Duration(1))
        other = relation.insert("alice", Timestamp(60), {"ssn": "123", "salary": 11})
        clock.advance(Duration(1))
        with pytest.raises(KeyViolation):
            relation.modify(other.element_surrogate, vt=Timestamp(50))
        # The failed modification must leave both elements current.
        assert len(relation.current()) == 2
