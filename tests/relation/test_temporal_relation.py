"""Integration tests for the temporal relation (Section 2 semantics)."""

import pytest

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.duration import Duration
from repro.chronos.interval import Interval
from repro.chronos.timestamp import FOREVER, Timestamp
from repro.core.constraints import ConstraintViolation, EnforcementMode
from repro.relation.errors import ElementNotFound, SchemaError
from repro.relation.schema import TemporalSchema, ValidTimeKind
from repro.relation.temporal_relation import TemporalRelation
from repro.storage.sqlite_backend import SQLiteEngine


@pytest.fixture
def clock():
    return SimulatedWallClock(start=100)


@pytest.fixture
def relation(clock):
    schema = TemporalSchema(
        name="temps",
        key=("sensor",),
        time_invariant=("sensor",),
        time_varying=("celsius",),
        specializations=["retroactive"],
    )
    return TemporalRelation(schema, clock=clock)


class TestInsert:
    def test_insert_returns_stored_element(self, relation):
        element = relation.insert("s1", Timestamp(95), {"sensor": "s1", "celsius": 20.0})
        assert element.is_current
        assert element.tt_start == Timestamp(100)
        assert element.attributes["celsius"] == 20.0

    def test_surrogates_are_unique_and_increasing(self, relation, clock):
        first = relation.insert("s1", Timestamp(95), {"sensor": "s1"})
        clock.advance(Duration(1))
        second = relation.insert("s1", Timestamp(96), {"sensor": "s1"})
        assert first.element_surrogate < second.element_surrogate

    def test_wrong_stamp_kind_rejected(self, relation):
        with pytest.raises(SchemaError):
            relation.insert("s1", Interval(Timestamp(0), Timestamp(5)), {"sensor": "s1"})

    def test_constraint_violation_leaves_relation_unchanged(self, relation):
        with pytest.raises(ConstraintViolation):
            relation.insert("s1", Timestamp(10**9), {"sensor": "s1"})
        assert len(relation) == 0

    def test_undeclared_attribute_rejected(self, relation):
        with pytest.raises(SchemaError):
            relation.insert("s1", Timestamp(95), {"oops": 1})


class TestDeleteAndModify:
    def test_logical_delete_preserves_history(self, relation, clock):
        element = relation.insert("s1", Timestamp(95), {"sensor": "s1"})
        clock.advance(Duration(10))
        closed = relation.delete(element.element_surrogate)
        assert closed.tt_stop == Timestamp(110)
        assert relation.current() == []
        assert len(relation) == 1  # nothing physically removed

    def test_delete_unknown_surrogate(self, relation):
        with pytest.raises(ElementNotFound):
            relation.delete(999)

    def test_modify_is_delete_plus_insert_with_fresh_surrogate(self, relation, clock):
        element = relation.insert("s1", Timestamp(95), {"sensor": "s1", "celsius": 20.0})
        clock.advance(Duration(5))
        replacement = relation.modify(element.element_surrogate, attributes={"celsius": 21.5})
        assert replacement.element_surrogate != element.element_surrogate
        assert replacement.attributes["celsius"] == 21.5
        assert replacement.attributes["sensor"] == "s1"  # carried over
        assert replacement.vt == element.vt  # carried over
        stored = {e.element_surrogate: e for e in relation.all_elements()}
        assert not stored[element.element_surrogate].is_current
        # Both halves share the modification's transaction time.
        assert stored[element.element_surrogate].tt_stop == replacement.tt_start

    def test_modify_deleted_element_rejected(self, relation, clock):
        element = relation.insert("s1", Timestamp(95), {"sensor": "s1"})
        clock.advance(Duration(1))
        relation.delete(element.element_surrogate)
        with pytest.raises(ElementNotFound):
            relation.modify(element.element_surrogate, attributes={"celsius": 1.0})


class TestReading:
    def test_rollback_sequence_of_states(self, relation, clock):
        first = relation.insert("s1", Timestamp(95), {"sensor": "s1"})
        clock.advance(Duration(10))
        second = relation.insert("s2", Timestamp(105), {"sensor": "s2"})
        clock.advance(Duration(10))
        relation.delete(first.element_surrogate)

        def surrogates_at(tt):
            return sorted(e.element_surrogate for e in relation.as_of(Timestamp(tt)))

        assert surrogates_at(99) == []
        assert surrogates_at(100) == [first.element_surrogate]
        assert surrogates_at(111) == [first.element_surrogate, second.element_surrogate]
        assert surrogates_at(122) == [second.element_surrogate]
        assert surrogates_at(10**9) == [second.element_surrogate]

    def test_rollback_state_is_stepwise_constant(self, relation, clock):
        element = relation.insert("s1", Timestamp(95), {"sensor": "s1"})
        clock.advance(Duration(100))
        relation.insert("s2", Timestamp(195), {"sensor": "s2"})
        # Between the two transactions the state does not change.
        for tt in (100, 120, 150, 199):
            assert [e.element_surrogate for e in relation.as_of(Timestamp(tt))] == [
                element.element_surrogate
            ]

    def test_valid_timeslice(self, relation, clock):
        relation.insert("s1", Timestamp(95), {"sensor": "s1"})
        clock.advance(Duration(5))
        relation.insert("s2", Timestamp(95), {"sensor": "s2"})
        assert len(relation.valid_at(Timestamp(95))) == 2
        assert relation.valid_at(Timestamp(96)) == []

    def test_bitemporal_slice(self, relation, clock):
        element = relation.insert("s1", Timestamp(95), {"sensor": "s1"})
        clock.advance(Duration(10))
        relation.delete(element.element_surrogate)
        # Currently nothing is valid at 95, but as of tt=105 it was.
        assert relation.valid_at(Timestamp(95)) == []
        assert len(relation.valid_at(Timestamp(95), as_of_tt=Timestamp(105))) == 1

    def test_lifeline(self, relation, clock):
        element = relation.insert("s1", Timestamp(95), {"sensor": "s1"})
        clock.advance(Duration(1))
        relation.insert("s2", Timestamp(96), {"sensor": "s2"})
        clock.advance(Duration(1))
        relation.modify(element.element_surrogate, attributes={"celsius": 1.0})
        lifeline = relation.lifeline("s1")
        assert len(lifeline) == 2
        assert len(lifeline.current()) == 1
        assert relation.objects() == ["s1", "s2"]


class TestBacklogView:
    def test_backlog_matches_engine_states(self, relation, clock):
        first = relation.insert("s1", Timestamp(95), {"sensor": "s1"})
        clock.advance(Duration(10))
        relation.insert("s2", Timestamp(100), {"sensor": "s2"})
        clock.advance(Duration(10))
        relation.modify(first.element_surrogate, attributes={"celsius": 7.0})
        backlog = relation.backlog()
        for tt in (99, 100, 111, 122, 10**6):
            from_engine = sorted(
                e.element_surrogate for e in relation.as_of(Timestamp(tt))
            )
            from_backlog = sorted(backlog.state_at(Timestamp(tt)))
            assert from_engine == from_backlog, tt

    def test_backlog_disabled(self, clock):
        schema = TemporalSchema(name="nolog")
        relation = TemporalRelation(schema, clock=clock, keep_backlog=False)
        with pytest.raises(SchemaError):
            relation.backlog()


class TestIntervalRelation:
    def test_interval_inserts_and_timeslice(self, clock):
        schema = TemporalSchema(
            name="assignments",
            valid_time_kind=ValidTimeKind.INTERVAL,
            time_varying=("project",),
        )
        relation = TemporalRelation(schema, clock=clock)
        relation.insert("emp1", Interval(Timestamp(90), Timestamp(110)), {"project": "x"})
        clock.advance(Duration(1))
        relation.insert("emp1", Interval(Timestamp(110), FOREVER), {"project": "y"})
        at_95 = relation.valid_at(Timestamp(95))
        assert [e.attributes["project"] for e in at_95] == ["x"]
        at_10e6 = relation.valid_at(Timestamp(10**6))
        assert [e.attributes["project"] for e in at_10e6] == ["y"]


class TestEnforcementModes:
    def test_record_mode_accepts_and_logs(self, clock):
        schema = TemporalSchema(
            name="audited",
            specializations=["retroactive"],
            enforcement=EnforcementMode.RECORD,
        )
        relation = TemporalRelation(schema, clock=clock)
        relation.insert("x", Timestamp(10**6), {})
        assert len(relation) == 1
        assert len(relation.constraints.recorded) == 1


class TestSQLiteBackedRelation:
    def test_same_behaviour_on_sqlite(self, clock):
        schema = TemporalSchema(
            name="temps",
            time_varying=("celsius",),
            specializations=["retroactive"],
        )
        relation = TemporalRelation(schema, clock=clock, engine=SQLiteEngine())
        element = relation.insert("s1", Timestamp(95), {"celsius": 20.0})
        clock.advance(Duration(10))
        relation.modify(element.element_surrogate, attributes={"celsius": 30.0})
        assert len(relation) == 2
        assert len(relation.current()) == 1
        assert len(relation.as_of(Timestamp(105))) == 1
        assert relation.current()[0].attributes["celsius"] == 30.0

    def test_reopening_reseeds_surrogates(self, tmp_path):
        path = str(tmp_path / "rel.db")
        schema = TemporalSchema(name="persisted", time_varying=("v",))
        clock = SimulatedWallClock(start=100)
        with SQLiteEngine(path) as engine:
            relation = TemporalRelation(schema, clock=clock, engine=engine)
            first = relation.insert("a", Timestamp(95), {"v": 1})
        clock2 = SimulatedWallClock(start=200)
        with SQLiteEngine(path) as engine:
            relation = TemporalRelation(schema, clock=clock2, engine=engine)
            second = relation.insert("b", Timestamp(195), {"v": 2})
            assert second.element_surrogate > first.element_surrogate
            assert len(relation) == 2
