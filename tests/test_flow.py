"""Tests for inter-relation flows (the paper's deferred third shortcoming)."""

import pytest

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.duration import Duration
from repro.chronos.timestamp import Timestamp
from repro.core.constraints import ConstraintViolation
from repro.flow import FlowLagBounded, FlowProcessor
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation


def build_pair(lag_bound=None, clock=None):
    clock = clock or SimulatedWallClock(start=0)
    source_schema = TemporalSchema(name="raw", time_varying=("v",))
    target_specs = [FlowLagBounded(lag_bound)] if lag_bound else []
    target_schema = TemporalSchema(
        name="derived",
        time_varying=("v",),
        user_times=("source_tt",),
        specializations=target_specs,
    )
    source = TemporalRelation(source_schema, clock=clock)
    target = TemporalRelation(target_schema, clock=clock)
    return clock, source, target


class TestFlowProcessor:
    def test_propagates_with_source_stamp(self):
        clock, source, target = build_pair()
        for i in range(3):
            clock.advance_to(Timestamp(10 * i))
            source.insert("o", Timestamp(10 * i - 1), {"v": i})
        processor = FlowProcessor(source, target)
        derived = processor.propagate()
        assert len(derived) == 3
        for original, copy in zip(source.all_elements(), derived):
            assert copy.user_times["source_tt"] == original.tt_start
            assert copy.attributes["v"] == original.attributes["v"]
            assert copy.vt == original.vt

    def test_incremental_high_water_mark(self):
        clock, source, target = build_pair()
        clock.advance_to(Timestamp(0))
        source.insert("o", Timestamp(0), {"v": 1})
        processor = FlowProcessor(source, target)
        assert len(processor.propagate()) == 1
        assert processor.propagate() == []  # nothing new
        clock.advance_to(Timestamp(100))
        source.insert("o", Timestamp(100), {"v": 2})
        fresh = processor.propagate()
        assert [e.attributes["v"] for e in fresh] == [2]
        assert processor.high_water_mark == Timestamp(100)

    def test_transform_can_filter_and_reshape(self):
        clock, source, target = build_pair()
        for i in range(4):
            clock.advance_to(Timestamp(10 * i))
            source.insert("o", Timestamp(10 * i), {"v": i})

        def only_even_doubled(element):
            if element.attributes["v"] % 2:
                return None
            return element.object_surrogate, element.vt, {"v": element.attributes["v"] * 2}

        processor = FlowProcessor(source, target, transform=only_even_doubled)
        derived = processor.propagate()
        assert [e.attributes["v"] for e in derived] == [0, 4]

    def test_target_must_declare_the_stamp(self):
        clock = SimulatedWallClock(start=0)
        source = TemporalRelation(TemporalSchema(name="raw"), clock=clock)
        bare_target = TemporalRelation(TemporalSchema(name="t"), clock=clock)
        with pytest.raises(ValueError, match="user_times"):
            FlowProcessor(source, bare_target)


class TestFlowLagBounded:
    def test_fresh_flow_passes(self):
        clock, source, target = build_pair(lag_bound=Duration(50))
        clock.advance_to(Timestamp(0))
        source.insert("o", Timestamp(0), {"v": 1})
        clock.advance_to(Timestamp(30))
        derived = FlowProcessor(source, target).propagate()
        assert len(derived) == 1

    def test_stale_flow_rejected(self):
        clock, source, target = build_pair(lag_bound=Duration(50))
        clock.advance_to(Timestamp(0))
        source.insert("o", Timestamp(0), {"v": 1})
        clock.advance_to(Timestamp(1_000))  # far past the freshness bound
        with pytest.raises(ConstraintViolation, match="flow lag"):
            FlowProcessor(source, target).propagate()

    def test_direct_inserts_are_vacuously_compliant(self):
        clock, _source, target = build_pair(lag_bound=Duration(50))
        clock.advance_to(Timestamp(10**6))
        element = target.insert("direct", Timestamp(10**6), {"v": 9})
        assert element.is_current

    def test_failure_message_names_the_lag(self):
        spec = FlowLagBounded(Duration(5))
        from repro.core.taxonomy.base import Stamped

        stale = Stamped(
            tt_start=Timestamp(100),
            vt=Timestamp(100),
            attributes={"source_tt": Timestamp(10)},
        )
        message = spec.element_failure(stale)
        assert "flow lag" in message and "bound" in message

    def test_custom_stamp_name(self):
        spec = FlowLagBounded(Duration(5), source_stamp="upstream_tt")
        assert "upstream_tt" in spec.name


class TestChainedFlows:
    def test_two_hop_pipeline_accumulates_dimensions(self):
        """raw -> staged -> published: each hop adds a time dimension."""
        clock = SimulatedWallClock(start=0)
        raw = TemporalRelation(TemporalSchema(name="raw", time_varying=("v",)), clock=clock)
        staged = TemporalRelation(
            TemporalSchema(name="staged", time_varying=("v",), user_times=("source_tt",)),
            clock=clock,
        )
        published = TemporalRelation(
            TemporalSchema(
                name="published",
                time_varying=("v",),
                user_times=("source_tt", "staged_tt"),
            ),
            clock=clock,
        )
        clock.advance_to(Timestamp(0))
        raw.insert("o", Timestamp(0), {"v": 7})
        clock.advance_to(Timestamp(10))
        first_hop = FlowProcessor(raw, staged)
        first_hop.propagate()
        clock.advance_to(Timestamp(20))

        def carry_both(element):
            return (
                element.object_surrogate,
                element.vt,
                {
                    "v": element.attributes["v"],
                    "source_tt": element.user_times["source_tt"],
                },
            )

        second_hop = FlowProcessor(staged, published, transform=carry_both, source_stamp="staged_tt")
        final = second_hop.propagate()
        assert len(final) == 1
        fact = final[0]
        # Three time dimensions now travel with the fact: its validity,
        # the raw storage time, and the staging storage time.
        assert fact.user_times["source_tt"] == Timestamp(0)
        assert fact.user_times["staged_tt"] > fact.user_times["source_tt"]
        assert fact.tt_start > fact.user_times["staged_tt"]
