"""Public-API integrity: everything advertised imports and works."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "module",
        [
            "repro.chronos",
            "repro.core",
            "repro.core.taxonomy",
            "repro.relation",
            "repro.relation.attribute_view",
            "repro.storage",
            "repro.storage.vacuum",
            "repro.storage.logfile",
            "repro.storage.single_stamp",
            "repro.query",
            "repro.query.tql",
            "repro.query.temporal_ops",
            "repro.design",
            "repro.design.drift",
            "repro.database",
            "repro.flow",
            "repro.workloads",
            "repro.cli",
        ],
    )
    def test_submodules_import(self, module):
        assert importlib.import_module(module) is not None

    def test_package_all_lists_resolve(self):
        for module_name in (
            "repro.chronos",
            "repro.core.taxonomy",
            "repro.relation",
            "repro.storage",
            "repro.query",
            "repro.design",
            "repro.workloads",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), f"{module_name}.{name}"

    def test_readme_quickstart_runs(self):
        from repro import (
            ConstraintViolation,
            SimulatedWallClock,
            TemporalRelation,
            TemporalSchema,
            Timestamp,
        )

        schema = TemporalSchema(
            name="plant_temperatures",
            key=("sensor",),
            time_invariant=("sensor",),
            time_varying=("celsius",),
            specializations=["retroactive", "delayed retroactive(30s)"],
        )
        clock = SimulatedWallClock(start=1_000)
        relation = TemporalRelation(schema, clock=clock)
        relation.insert("s1", Timestamp(940), {"sensor": "s1", "celsius": 21.5})
        with pytest.raises(ConstraintViolation):
            relation.insert("s1", Timestamp(10**9), {"sensor": "s1", "celsius": 0.0})
        assert len(relation.current()) == 1
        assert len(relation.valid_at(Timestamp(940))) == 1
        assert len(relation.as_of(Timestamp(1_000))) == 1
