"""Cross-engine tests: memory and SQLite must behave identically."""

import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro.chronos.interval import Interval
from repro.chronos.timestamp import FOREVER, Timestamp
from repro.relation.element import Element
from repro.relation.errors import ElementNotFound
from repro.storage.memory import MemoryEngine
from repro.storage.sqlite_backend import SQLiteEngine

ENGINES = [MemoryEngine, SQLiteEngine]


def event_element(surrogate: int, tt: int, vt: int, who="obj") -> Element:
    return Element(
        element_surrogate=surrogate,
        object_surrogate=who,
        tt_start=Timestamp(tt),
        vt=Timestamp(vt),
    )


def interval_element(surrogate: int, tt: int, start: int, end: int) -> Element:
    return Element(
        element_surrogate=surrogate,
        object_surrogate="obj",
        tt_start=Timestamp(tt),
        vt=Interval(Timestamp(start), Timestamp(end)),
    )


@pytest.mark.parametrize("engine_class", ENGINES)
class TestEngineContract:
    def test_append_and_get(self, engine_class):
        engine = engine_class()
        element = event_element(1, 10, 5)
        engine.append(element)
        assert engine.get(1) == element
        assert len(engine) == 1

    def test_duplicate_surrogate_rejected(self, engine_class):
        engine = engine_class()
        engine.append(event_element(1, 10, 5))
        with pytest.raises(ValueError):
            engine.append(event_element(1, 20, 5))

    def test_get_missing(self, engine_class):
        with pytest.raises(ElementNotFound):
            engine_class().get(42)

    def test_close_element(self, engine_class):
        engine = engine_class()
        engine.append(event_element(1, 10, 5))
        closed = engine.close_element(1, Timestamp(20))
        assert closed.tt_stop == Timestamp(20)
        assert engine.get(1).tt_stop == Timestamp(20)
        assert list(engine.current()) == []

    def test_double_close_rejected(self, engine_class):
        engine = engine_class()
        engine.append(event_element(1, 10, 5))
        engine.close_element(1, Timestamp(20))
        with pytest.raises(ValueError):
            engine.close_element(1, Timestamp(30))

    def test_as_of(self, engine_class):
        engine = engine_class()
        engine.append(event_element(1, 10, 5))
        engine.append(event_element(2, 20, 15))
        engine.close_element(1, Timestamp(30))
        assert [e.element_surrogate for e in engine.as_of(Timestamp(9))] == []
        assert [e.element_surrogate for e in engine.as_of(Timestamp(10))] == [1]
        assert sorted(e.element_surrogate for e in engine.as_of(Timestamp(25))) == [1, 2]
        assert [e.element_surrogate for e in engine.as_of(Timestamp(30))] == [2]
        assert [e.element_surrogate for e in engine.as_of(FOREVER)] == [2]

    def test_valid_at_events(self, engine_class):
        engine = engine_class()
        engine.append(event_element(1, 10, 5))
        engine.append(event_element(2, 20, 5))
        engine.append(event_element(3, 30, 7))
        assert sorted(e.element_surrogate for e in engine.valid_at(Timestamp(5))) == [1, 2]

    def test_valid_at_intervals(self, engine_class):
        engine = engine_class()
        engine.append(interval_element(1, 10, 0, 10))
        engine.append(interval_element(2, 20, 5, 15))
        assert sorted(e.element_surrogate for e in engine.valid_at(Timestamp(7))) == [1, 2]
        assert [e.element_surrogate for e in engine.valid_at(Timestamp(12))] == [2]
        assert [e.element_surrogate for e in engine.valid_at(Timestamp(15))] == []

    def test_valid_at_sees_only_current(self, engine_class):
        engine = engine_class()
        engine.append(event_element(1, 10, 5))
        engine.close_element(1, Timestamp(20))
        assert list(engine.valid_at(Timestamp(5))) == []
        assert [
            e.element_surrogate for e in engine.valid_at(Timestamp(5), as_of_tt=Timestamp(15))
        ] == [1]

    def test_valid_overlapping(self, engine_class):
        engine = engine_class()
        engine.append(interval_element(1, 10, 0, 10))
        engine.append(interval_element(2, 20, 20, 30))
        engine.append(event_element(3, 30, 25))
        window = Interval(Timestamp(8), Timestamp(26))
        assert sorted(e.element_surrogate for e in engine.valid_overlapping(window)) == [
            1,
            2,
            3,
        ]
        narrow = Interval(Timestamp(10), Timestamp(20))
        assert list(engine.valid_overlapping(narrow)) == []

    def test_scan_in_transaction_order(self, engine_class):
        engine = engine_class()
        for surrogate, tt in ((1, 10), (2, 20), (3, 30)):
            engine.append(event_element(surrogate, tt, 0))
        assert [e.element_surrogate for e in engine.scan()] == [1, 2, 3]


class TestEngineEquivalence:
    """Both engines produce identical answers on a random update stream."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.booleans()),
            min_size=1,
            max_size=25,
        )
    )
    def test_random_streams(self, script):
        memory = MemoryEngine()
        sqlite = SQLiteEngine()
        tt = 0
        surrogate = 0
        live = []
        for vt_offset, is_delete in script:
            tt += 1
            if is_delete and live:
                victim = live.pop(0)
                memory.close_element(victim, Timestamp(tt))
                sqlite.close_element(victim, Timestamp(tt))
            else:
                surrogate += 1
                element = event_element(surrogate, tt, tt - vt_offset)
                memory.append(element)
                sqlite.append(element)
                live.append(surrogate)
        for probe in range(0, tt + 2):
            stamp = Timestamp(probe)
            assert sorted(e.element_surrogate for e in memory.as_of(stamp)) == sorted(
                e.element_surrogate for e in sqlite.as_of(stamp)
            )
            assert sorted(e.element_surrogate for e in memory.valid_at(stamp)) == sorted(
                e.element_surrogate for e in sqlite.valid_at(stamp)
            )


class TestSQLitePersistence:
    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "engine.db")
        with SQLiteEngine(path) as engine:
            engine.append(
                Element(
                    element_surrogate=7,
                    object_surrogate="alice",
                    tt_start=Timestamp(10),
                    vt=Timestamp(5),
                    time_invariant={"ssn": "123"},
                    time_varying={"salary": 99},
                    user_times={"signed": Timestamp(3)},
                )
            )
        with SQLiteEngine(path) as engine:
            element = engine.get(7)
            assert element.object_surrogate == "alice"
            assert element.time_invariant == {"ssn": "123"}
            assert element.time_varying == {"salary": 99}
            assert element.user_times == {"signed": Timestamp(3)}
            assert element.vt == Timestamp(5)
            assert engine.max_surrogate() == 7

    def test_unbounded_interval_roundtrip(self):
        engine = SQLiteEngine()
        engine.append(
            Element(
                element_surrogate=1,
                object_surrogate=None,
                tt_start=Timestamp(10),
                vt=Interval(Timestamp(5), FOREVER),
            )
        )
        element = engine.get(1)
        assert element.vt.end is FOREVER
        assert element.valid_at(Timestamp(10**9))


class TestBusyRetry:
    """Transient SQLITE_BUSY/LOCKED errors are retried with backoff."""

    def test_transient_lock_is_absorbed(self):
        from repro.observability import metrics
        from repro.storage import sqlite_backend

        failures = iter([True, True, False])

        def flaky():
            if next(failures):
                raise sqlite3.OperationalError("database is locked")
            return "done"

        with metrics.enabled_scope(fresh=True) as registry:
            assert sqlite_backend._with_busy_retry(flaky) == "done"
        assert registry.snapshot()["counters"]["storage.sqlite.busy_retries"] == 2

    def test_persistent_lock_still_surfaces(self):
        from repro.storage import sqlite_backend

        def held():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError, match="locked"):
            sqlite_backend._with_busy_retry(held)

    def test_non_busy_errors_are_not_retried(self):
        from repro.storage import sqlite_backend

        calls = []

        def broken():
            calls.append(1)
            raise sqlite3.OperationalError("no such table: elements")

        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            sqlite_backend._with_busy_retry(broken)
        assert len(calls) == 1
