"""Tiered storage: compressed segment files, cold reads, compaction.

Three layers of assurance, mirroring the storage design:

* the ``.seg`` codec round-trips exactly (values AND reprs -- the
  differential suites compare reprs, so granularity must survive);
* tiered stores answer every query surface byte-identically to flat
  in-memory stores, with vacuum and compaction interleaved (Hypothesis);
* a compaction rewrite torn at ANY byte offset recovers to a consistent
  segment set with unchanged answers (the crash matrix).
"""

from __future__ import annotations

import os
import shutil
from contextlib import contextmanager

from hypothesis import given, settings

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.interval import Interval
from repro.chronos.timestamp import FOREVER, Timestamp
from repro.relation.element import Element
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation
from repro.storage import segfile
from repro.storage.logfile import LogFileEngine
from repro.storage.memory import MemoryEngine
from repro.storage.segfile import (
    SegmentFileError,
    SegmentFileReader,
    decode_element,
    encode_element,
    write_segment_file,
)
from repro.storage.sharded import ShardedEngine
from repro.storage.tiered import TierManager, _columns_from_elements, tiered_enabled
from repro.storage.vacuum import vacuum_engine
from tests.storage.test_segments import (
    all_answers,
    parallel_env,
    replay,
    segment_workloads,
)


@contextmanager
def tiered_env(value, cache=None, segment_size=None):
    """Temporarily pin REPRO_TIERED (and optionally cache/segment size)."""
    pins = {"REPRO_TIERED": value, "REPRO_TIER_CACHE": cache}
    if segment_size is not None:
        pins["REPRO_SEGMENT_SIZE"] = segment_size
    saved = {name: os.environ.get(name) for name in pins}
    for name, pinned in pins.items():
        if pinned is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = pinned
    try:
        yield
    finally:
        for name, old in saved.items():
            if old is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = old


def ts(n, granularity="microsecond"):
    return Timestamp(n, granularity)


def make_element(i, tt=None, vt=None, tt_stop=FOREVER, varying=None):
    return Element(
        element_surrogate=i,
        object_surrogate=f"o{i}",
        tt_start=ts(i) if tt is None else tt,
        vt=ts(i) if vt is None else vt,
        tt_stop=tt_stop,
        time_invariant={"k": i},
        time_varying={"v": i * 10} if varying is None else varying,
        user_times=(),
    )


# -- the element codec --------------------------------------------------------------


class TestElementCodec:
    def test_round_trip_preserves_repr(self):
        cases = [
            make_element(0),
            make_element(1, tt_stop=ts(99)),
            make_element(2, tt=ts(5, "second"), vt=ts(7, "minute")),
            make_element(3, vt=Interval(ts(1), ts(100))),
            make_element(4, vt=Interval(ts(1, "second"), ts(2, "second"))),
            make_element(5, varying={"name": "café", "nested": {"a": [1, 2]}}),
        ]
        for element in cases:
            decoded = decode_element(encode_element(element))
            assert decoded == element
            assert repr(decoded) == repr(element)

    def test_forever_decodes_to_the_singleton(self):
        decoded = decode_element(encode_element(make_element(0)))
        assert decoded.tt_stop is FOREVER
        assert decoded.is_current


# -- column encodings ---------------------------------------------------------------


class TestColumnEncodings:
    def test_round_trips(self):
        cases = [
            ([0] * 500, True),  # RLE
            (list(range(0, 5000, 10)), True),  # delta
            ([7, 7, 9, 7, 9, 7] * 80, False),  # dict
            ([i * (-1) ** i * 7919 for i in range(300)], False),  # raw-ish
        ]
        for values, non_decreasing in cases:
            encoding, payload = segfile.encode_column(values, non_decreasing)
            assert list(segfile.decode_column(encoding, payload)) == values

    def test_delta_bisect_matches_decoded_bisect(self):
        from bisect import bisect_right

        values = sorted(i * 13 + (i % 7) for i in range(1000))
        encoding, payload = segfile.encode_column(values, non_decreasing=True)
        assert encoding == "delta"
        probes = [-1, 0, values[0], values[3], values[500] - 1, values[999], 10**9]
        for probe in probes:
            assert segfile._delta_bisect_right(payload, probe) == bisect_right(
                values, probe
            )


# -- file format: damage detection --------------------------------------------------


class TestDamageDetection:
    def test_every_truncation_is_detected(self, tmp_path):
        path = str(tmp_path / "seg.seg")
        elements = [make_element(i) for i in range(6)]
        write_segment_file(path, elements, _columns_from_elements(elements), True)
        with open(path, "rb") as handle:
            intact = handle.read()
        with SegmentFileReader(path) as reader:
            assert [repr(e) for e in reader.elements()] == [repr(e) for e in elements]
        torn_path = str(tmp_path / "torn.seg")
        for cut in range(len(intact)):
            with open(torn_path, "wb") as handle:
                handle.write(intact[:cut])
            try:
                reader = SegmentFileReader(torn_path)
            except SegmentFileError:
                continue
            reader.close()
            raise AssertionError(f"truncation at byte {cut} went undetected")

    def test_flipped_payload_byte_is_detected(self, tmp_path):
        path = str(tmp_path / "seg.seg")
        elements = [make_element(i) for i in range(6)]
        write_segment_file(path, elements, _columns_from_elements(elements), True)
        with open(path, "rb") as handle:
            intact = bytearray(handle.read())
        intact[len(intact) // 3] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(intact))
        try:
            with SegmentFileReader(path) as reader:
                for name in segfile.COLUMN_NAMES:
                    reader.column(name)
                reader.elements()
        except SegmentFileError:
            return
        raise AssertionError("flipped byte went undetected")


# -- the tiered-vs-flat differential ------------------------------------------------


@settings(deadline=None, max_examples=25)
@given(segment_workloads())
def test_tiered_engines_match_flat_scan(workload):
    """Byte-identical answers: flat reference vs tiered with a tiny LRU
    cache (evictions force reopen+decode) vs REPRO_TIERED=0 (forced off
    even though a segment size is set)."""
    ops, probes = workload
    with parallel_env("0"):
        with tiered_env("0"):
            reference = all_answers(replay(ops, 100_000), probes)
            flat_small = all_answers(replay(ops, 4), probes)
        with tiered_env("1", cache="1"):
            tiered = all_answers(replay(ops, 4), probes)
    assert flat_small == reference
    assert tiered == reference


@settings(deadline=None, max_examples=10)
@given(segment_workloads())
def test_tiered_compact_preserves_answers(workload):
    """Explicit compaction (demote everything + fold patches) between
    the workload and the probes changes no answer."""
    ops, probes = workload
    with parallel_env("0"):
        with tiered_env("0"):
            reference = all_answers(replay(ops, 100_000), probes)
        with tiered_env("1", cache="2"):
            relation = replay(ops, 4)
            relation.engine.transaction_index.store.compact()
            compacted = all_answers(relation, probes)
    assert compacted == reference


# -- vacuum as the tiering driver (satellite: no eager rebuilds) --------------------


class TestVacuumTiering:
    def _grow(self, store_elements=48, close=0, tier_dir=None):
        engine = MemoryEngine(segment_size=8, tier_dir=tier_dir)
        for i in range(store_elements):
            engine.append(make_element(i, tt=ts(i, "second"), vt=ts(i, "second")))
        for i in range(close):
            engine.close_element(i, ts(1000 + i, "second"))
        return engine

    def test_unchanged_segments_not_rewritten(self, tmp_path):
        engine = self._grow(tier_dir=str(tmp_path))
        store = engine.transaction_index.store
        manager = store.tiering
        cold = store._cold
        assert cold > 0
        stamps = {
            ordinal: os.stat(manager.path_of(ordinal)).st_mtime_ns
            for ordinal in range(cold)
        }
        compacted, report = vacuum_engine(engine, ts(0))
        assert report.purged == 0
        new_store = compacted.transaction_index.store
        assert new_store.tiering is manager
        for ordinal in range(min(cold, new_store._cold)):
            assert os.stat(manager.path_of(ordinal)).st_mtime_ns == stamps[ordinal]

    def test_purge_invalidates_only_from_first_purged(self, tmp_path):
        engine = self._grow(tier_dir=str(tmp_path))
        store = engine.transaction_index.store
        manager = store.tiering
        cold = store._cold
        # Close one element in the third segment: everything before it
        # is an unchanged prefix, everything after is invalidated.
        engine.close_element(20, ts(50, "second"))
        stamps = {
            ordinal: os.stat(manager.path_of(ordinal)).st_mtime_ns
            for ordinal in range(cold)
        }
        compacted, report = vacuum_engine(engine, ts(60, "second"))
        assert report.purged == 1
        new_store = compacted.transaction_index.store
        retained = min(cold, 20 // 8, new_store._cold)
        for ordinal in range(retained):
            assert os.stat(manager.path_of(ordinal)).st_mtime_ns == stamps[ordinal]
        assert [e.element_surrogate for e in compacted.scan()] == [
            i for i in range(48) if i != 20
        ]

    def test_retired_engine_stays_readable(self, tmp_path):
        engine = self._grow(close=10, tier_dir=str(tmp_path))
        before = [repr(e) for e in engine.scan()]
        vacuum_engine(engine, ts(1005, "second"))
        # The retired store was rehydrated into plain memory: same
        # answers, no dependence on files the rebuild reused or removed.
        assert engine.transaction_index.store.tiering is None
        assert [repr(e) for e in engine.scan()] == before

    def test_flat_store_carries_sorted_cache_prefix(self):
        with tiered_env("0"):
            engine = MemoryEngine(segment_size=8)
            for i in range(48):
                engine.append(make_element(i))
            store = engine.transaction_index.store
            if store.columns is None:  # REPRO_COLUMNAR=0 leg: nothing to carry
                return
            store.columns.sorted_starts(0, 8)
            store.columns.sorted_starts(40, 48)
            engine.close_element(44, ts(1000))
            compacted, report = vacuum_engine(engine, ts(2000))
            assert report.purged == 1
            carried = set(compacted.transaction_index.store.columns._sorted_cache)
            assert (0, 8) in carried  # before first purge: reused
            assert (40, 48) not in carried  # spans the purge: dropped


# -- the compaction crash matrix ----------------------------------------------------


class TestCompactionCrashMatrix:
    def test_torn_rewrite_recovers_at_every_byte(self, tmp_path):
        """Cut the compaction rewrite of a patched segment at every byte
        offset; reopening from the WAL must detect the damage and land
        on a consistent segment set with unchanged answers."""
        wal = str(tmp_path / "crash.log")
        tier = str(tmp_path / "tier")
        with tiered_env(None, segment_size="4"):
            engine = LogFileEngine(wal, fsync=False, tier_dir=tier)
            for i in range(12):
                engine.append(make_element(i))
            store = engine.transaction_index.store
            store.compact()  # v1: everything cold, no patches
            engine.close_element(1, ts(100))  # patch in cold segment 0
            target = store.tiering.path_of(0)
            with open(target, "rb") as handle:
                v1 = handle.read()
            store.compact()  # v2: rewrite folds the patch
            with open(target, "rb") as handle:
                v2 = handle.read()
            assert v1 != v2
            engine.close()

            def reference_answers(eng):
                return [repr(e) for e in eng.scan()] + [repr(e) for e in eng.current()]

            clean = LogFileEngine(wal, fsync=False, tier_dir=tier)
            want = reference_answers(clean)
            clean.close()

            for cut in range(len(v2) + 1):
                with open(target, "wb") as handle:
                    handle.write(v2[:cut])  # torn rewrite (worst case)
                reopened = LogFileEngine(wal, fsync=False, tier_dir=tier)
                assert reference_answers(reopened) == want, f"cut at byte {cut}"
                reopened.transaction_index.store.compact()
                assert reference_answers(reopened) == want, f"cut at byte {cut}"
                # After recovery + compaction the file is whole again:
                # CRC-valid and carrying the folded (post-patch) rows.
                with SegmentFileReader(target) as reader:
                    stops = list(reader.column("tt_stop"))
                assert stops[1] == ts(100).microseconds
                reopened.close()

    def test_tmp_file_leftover_is_harmless(self, tmp_path):
        wal = str(tmp_path / "crash.log")
        tier = str(tmp_path / "tier")
        with tiered_env(None, segment_size="4"):
            engine = LogFileEngine(wal, fsync=False, tier_dir=tier)
            for i in range(8):
                engine.append(make_element(i))
            engine.transaction_index.store.compact()
            engine.close()
            # A crash between tmp write and rename leaves *.tmp trash.
            trash = os.path.join(tier, "seg-000000.seg.tmp")
            with open(trash, "wb") as handle:
                handle.write(b"torn half-written segment")
            reopened = LogFileEngine(wal, fsync=False, tier_dir=tier)
            assert [e.element_surrogate for e in reopened.scan()] == list(range(8))
            reopened.close()


# -- sharded rebalance bookkeeping (satellite: incremental, not full scans) ---------


class TestIncrementalRebalance:
    def _populate(self, engine, count=120):
        for i in range(count):
            engine.append(make_element(i))

    def test_route_and_envelopes_match_full_rebuild(self):
        engine = ShardedEngine(shard_count=4)
        self._populate(engine)
        moved = engine.rebalance(0, 1)
        assert moved > 0
        reference = ShardedEngine(shard_count=4, partitioner=engine.partitioner)
        self._populate(reference)
        assert engine._route == reference._route
        assert [repr(e) for e in engine.scan()] == [repr(e) for e in reference.scan()]
        assert [
            (e.count, e.live, e.tt_lo, e.tt_hi, e.vt_lo, e.vt_hi, e.max_closed_tt_stop)
            for e in engine.envelopes()
        ] == [
            (e.count, e.live, e.tt_lo, e.tt_hi, e.vt_lo, e.vt_hi, e.max_closed_tt_stop)
            for e in reference.envelopes()
        ]

    def test_rebalance_recomputes_only_affected_envelopes(self, monkeypatch):
        engine = ShardedEngine(shard_count=4)
        self._populate(engine)
        engine.envelopes()  # warm every memo
        computed = []
        original = ShardedEngine._compute_envelope

        def counting(shard):
            computed.append(shard)
            return original(shard)

        monkeypatch.setattr(
            ShardedEngine, "_compute_envelope", staticmethod(counting)
        )
        engine.envelopes()
        assert computed == []  # fully memoized
        engine.rebalance(0, 1)
        engine.envelopes()
        assert 0 < len(computed) <= 2  # source + target only

    def test_close_after_rebalance_recomputes_one(self, monkeypatch):
        engine = ShardedEngine(shard_count=4)
        self._populate(engine)
        engine.rebalance(0, 1)
        engine.envelopes()
        computed = []
        original = ShardedEngine._compute_envelope

        def counting(shard):
            computed.append(shard)
            return original(shard)

        monkeypatch.setattr(
            ShardedEngine, "_compute_envelope", staticmethod(counting)
        )
        closed = engine.close_element(5, ts(10_000))
        assert not closed.is_current
        engine.envelopes()
        assert len(computed) == 1


# -- per-shard tier directories -----------------------------------------------------


class TestShardedTiering:
    def test_durable_shards_tier_next_to_their_wals(self, tmp_path):
        data = str(tmp_path)
        with tiered_env(None, segment_size="8"):
            engine = ShardedEngine(
                shard_count=2, data_dir=data, fsync=False, tier_dir=data
            )
            for i in range(64):
                engine.append(make_element(i))
            for shard in engine.shards:
                shard.transaction_index.store.compact()
            tier_dirs = sorted(
                entry for entry in os.listdir(data) if entry.endswith(".tier")
            )
            assert tier_dirs == ["shard-000.tier", "shard-001.tier"]
            assert all(
                os.listdir(os.path.join(data, entry)) for entry in tier_dirs
            )
            engine.close()
            # Reopen adopts (or rewrites) and answers identically to an
            # untier-ed open of the same WALs.
            reopened = ShardedEngine(data_dir=data, fsync=False, tier_dir=data)
            plain_dir = str(tmp_path / "plain")
            os.makedirs(plain_dir)
            for name in os.listdir(data):
                source = os.path.join(data, name)
                if os.path.isfile(source):
                    shutil.copy(source, os.path.join(plain_dir, name))
            plain = ShardedEngine(data_dir=plain_dir, fsync=False)
            assert [repr(e) for e in reopened.scan()] == [
                repr(e) for e in plain.scan()
            ]
            reopened.close()
            plain.close()

    def test_rebalance_with_tiering_keeps_answers(self, tmp_path):
        data = str(tmp_path)
        with tiered_env(None, segment_size="8"):
            engine = ShardedEngine(
                shard_count=2, data_dir=data, fsync=False, tier_dir=data
            )
            for i in range(64):
                engine.append(make_element(i))
            for shard in engine.shards:
                shard.transaction_index.store.compact()
            before = sorted(e.element_surrogate for e in engine.scan())
            engine.rebalance(1, 0)
            assert sorted(e.element_surrogate for e in engine.scan()) == before
            engine.close()


# -- observability ------------------------------------------------------------------


class TestTieredObservability:
    def test_explain_reports_cold_segments(self):
        from repro.observability.explain import explain_query

        with tiered_env("1", segment_size="4"):
            assert tiered_enabled() is True
            schema = TemporalSchema(name="r", time_varying=("reading",))
            clock = SimulatedWallClock(start=0)
            engine = MemoryEngine(segment_size=4)
            relation = TemporalRelation(
                schema, clock=clock, keep_backlog=False, engine=engine
            )
            for i in range(24):
                clock.advance_to(Timestamp(100 * (i + 1)))
                relation.insert(f"o{i}", Timestamp(100 * (i + 1)), {"reading": i})
            store = engine.transaction_index.store
            store.compact()
            assert store.cold_base > 0
            report = explain_query(relation, "SELECT * FROM r AS OF 1200")
            assert report.tier_cold_segments
            assert any("tiered" in line for line in report.decisions)
            assert "compressed cold storage" in report.render()

    def test_statistics_expose_tier_counters(self, tmp_path):
        engine = MemoryEngine(segment_size=4, tier_dir=str(tmp_path))
        for i in range(24):
            engine.append(make_element(i))
        store = engine.transaction_index.store
        store.compact()
        stats = store.statistics()
        assert stats["segments_cold"] > 0
        assert stats["tier_demotions"] > 0
        assert stats["tier_bytes_written"] > 0


class TestTierManagerHousekeeping:
    def test_lru_eviction_closes_readers(self, tmp_path):
        manager = TierManager(str(tmp_path), cache_segments=1)
        engine = MemoryEngine(segment_size=4, tier_manager=manager)
        for i in range(32):
            engine.append(make_element(i))
        store = engine.transaction_index.store
        store.compact()
        assert store._cold >= 4
        # Touch every cold segment; with a one-slot cache at most one
        # reader may stay open afterwards.
        for ordinal in range(store._cold):
            manager.columns(ordinal).tt_start
        open_readers = sum(
            1 for segment in manager.segments.values() if segment._reader is not None
        )
        assert open_readers <= 1
        # Eviction must not lose patches or correctness.
        engine.close_element(2, ts(999))
        for ordinal in range(store._cold):
            manager.columns(ordinal).tt_stop
        assert [e.element_surrogate for e in engine.scan()] == list(range(32))
        assert not engine.get(2).is_current
