"""Differential engine parity: one workload, three engines, one answer.

A random workload script -- single inserts, ``append_many`` batches,
batches that are *rejected* by a declared specialization, and logical
deletions -- is replayed through three relations that differ only in
their storage engine (memory, SQLite, log file).  Each relation gets
its own :class:`LogicalClock` started at the same tick, so all three
stamp every operation identically; afterwards the visible contents and
the answers to rollback / timeslice queries must agree element for
element.

The log-file relation is additionally closed and re-opened from disk,
and the replayed mirror must still agree -- the durability half of the
parity claim.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, strategies as st

from repro.chronos.timestamp import FOREVER, Timestamp
from repro.core.constraints import ConstraintViolation
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation
from repro.chronos.clock import LogicalClock
from repro.storage.logfile import LogFileEngine
from repro.storage.sqlite_backend import SQLiteEngine
from tests.strategies import OBJECTS, insert_rows, json_safe_attributes

pytestmark = pytest.mark.slow

#: Every compliant valid time is in [0, 999]; the clocks start at 1000,
#: so the declared ``retroactive`` specialization (vt <= tt) holds.
CLOCK_START = 1000
COMPLIANT_VT = st.integers(min_value=0, max_value=999)

#: A valid time no transaction stamp in these workloads ever reaches:
#: guaranteed to violate ``retroactive`` and poison its whole batch.
POISON_VT = Timestamp(10_000_000)


def make_relation(engine=None) -> TemporalRelation:
    schema = TemporalSchema(
        name="parity",
        time_varying=("reading",),
        specializations=["retroactive"],
    )
    return TemporalRelation(schema, clock=LogicalClock(start=CLOCK_START), engine=engine)


@st.composite
def workload_scripts(draw):
    """A replayable operation script plus query probe coordinates."""
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        kind = draw(st.sampled_from(["insert", "batch", "reject", "delete"]))
        if kind == "insert":
            ops.append(
                (
                    "insert",
                    draw(OBJECTS),
                    draw(COMPLIANT_VT),
                    draw(json_safe_attributes()),
                )
            )
        elif kind == "batch":
            rows = draw(insert_rows(min_size=1, max_size=6, vt_ticks=COMPLIANT_VT))
            ops.append(("batch", rows))
        elif kind == "reject":
            rows = draw(insert_rows(min_size=0, max_size=4, vt_ticks=COMPLIANT_VT))
            rows.insert(
                draw(st.integers(min_value=0, max_value=len(rows))),
                ("poison", POISON_VT, {"reading": -1}),
            )
            ops.append(("reject", rows))
        else:
            ops.append(("delete", draw(st.integers(min_value=0, max_value=31))))
    probe_tts = draw(
        st.lists(
            st.integers(min_value=CLOCK_START - 2, max_value=CLOCK_START + 80),
            min_size=1,
            max_size=4,
        )
    )
    probe_vts = draw(st.lists(COMPLIANT_VT, min_size=1, max_size=4))
    return ops, probe_tts, probe_vts


def replay(relation: TemporalRelation, ops) -> None:
    for op in ops:
        if op[0] == "insert":
            _, object_surrogate, vt_tick, attributes = op
            relation.insert(object_surrogate, Timestamp(vt_tick), attributes)
        elif op[0] == "batch":
            relation.append_many(op[1])
        elif op[0] == "reject":
            with pytest.raises(ConstraintViolation):
                relation.append_many(op[1])
        else:
            current = sorted(relation.current(), key=lambda e: e.element_surrogate)
            if current:
                relation.delete(current[op[1] % len(current)].element_surrogate)


def canonical(elements) -> list:
    """Engine-independent view of an element set: everything that must
    agree across backends, on the exact microsecond time-line."""
    rows = []
    for element in elements:
        rows.append(
            (
                element.element_surrogate,
                element.object_surrogate,
                element.tt_start.microseconds,
                None if element.tt_stop is FOREVER else element.tt_stop.microseconds,
                element.vt.microseconds,
                tuple(sorted(element.time_varying.items(), key=lambda kv: kv[0])),
            )
        )
    return sorted(rows)


@given(workload_scripts())
def test_three_engines_agree_on_every_view(tmp_path_factory, script):
    ops, probe_tts, probe_vts = script
    log_path = os.path.join(
        str(tmp_path_factory.mktemp("parity")), "relation.jsonl"
    )

    memory = make_relation()
    sqlite = make_relation(engine=SQLiteEngine())
    logfile = make_relation(engine=LogFileEngine(log_path))
    relations = [memory, sqlite, logfile]
    try:
        for relation in relations:
            replay(relation, ops)

        expected = canonical(memory.all_elements())
        for relation in relations[1:]:
            assert canonical(relation.all_elements()) == expected

        expected_current = canonical(memory.current())
        for relation in relations[1:]:
            assert canonical(relation.current()) == expected_current

        for tick in probe_tts:
            tt = Timestamp(tick)
            expected_as_of = canonical(memory.as_of(tt))
            for relation in relations[1:]:
                assert canonical(relation.as_of(tt)) == expected_as_of

        for tick in probe_vts:
            vt = Timestamp(tick)
            expected_slice = canonical(memory.valid_at(vt))
            for relation in relations[1:]:
                assert canonical(relation.valid_at(vt)) == expected_slice

        # Versions moved in lockstep: one bump per accepted operation.
        assert memory.version == sqlite.version == logfile.version

        # Durability: close the log and replay it from disk; the
        # re-opened mirror must reproduce the same element set.
        logfile.engine.close()
        with LogFileEngine(log_path) as reopened:
            assert canonical(reopened.scan()) == expected
            assert canonical(reopened.current()) == expected_current
    finally:
        logfile.engine.close()
        sqlite.engine.close()
