"""Tests for JSON-lines backlog persistence."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.chronos.interval import Interval
from repro.chronos.timestamp import FOREVER, Timestamp
from repro.relation.element import Element
from repro.storage.backlog import Backlog
from repro.storage.logfile import (
    dump_backlog,
    dump_operations,
    load_backlog,
    load_operations,
)


def event_element(surrogate, tt, vt, **varying):
    return Element(
        element_surrogate=surrogate,
        object_surrogate=f"obj-{surrogate}",
        tt_start=Timestamp(tt),
        vt=Timestamp(vt),
        time_varying=varying,
        user_times={"signed": Timestamp(vt - 1)},
    )


class TestRoundTrip:
    def test_file_roundtrip(self, tmp_path):
        backlog = Backlog()
        backlog.record_insert(event_element(1, 10, 5, v=1))
        backlog.record_insert(event_element(2, 20, 15, v="two"))
        backlog.record_delete(1, Timestamp(30))
        path = str(tmp_path / "ops.jsonl")
        assert dump_backlog(backlog, path) == 3

        loaded = load_backlog(path)
        assert len(loaded) == 3
        for tt in (10, 20, 25, 30, 100):
            assert loaded.state_at(Timestamp(tt)) == backlog.state_at(Timestamp(tt))
        reloaded = loaded.current_state()[2]
        assert reloaded.time_varying == {"v": "two"}
        assert reloaded.user_times == {"signed": Timestamp(14)}

    def test_interval_and_unbounded_endpoints(self, tmp_path):
        backlog = Backlog()
        backlog.record_insert(
            Element(
                element_surrogate=1,
                object_surrogate=None,
                tt_start=Timestamp(10),
                vt=Interval(Timestamp(0), FOREVER),
            )
        )
        path = str(tmp_path / "ops.jsonl")
        dump_backlog(backlog, path)
        loaded = load_backlog(path)
        element = loaded.current_state()[1]
        assert element.vt.end is FOREVER
        assert element.object_surrogate is None

    def test_modification_pairs_survive(self, tmp_path):
        backlog = Backlog()
        backlog.record_insert(event_element(1, 10, 5))
        backlog.record_modification(1, event_element(2, 20, 5))
        path = str(tmp_path / "ops.jsonl")
        dump_backlog(backlog, path)
        loaded = load_backlog(path)
        assert sorted(loaded.state_at(Timestamp(20))) == [2]
        assert sorted(loaded.state_at(Timestamp(19))) == [1]

    def test_blank_lines_ignored(self):
        stream = io.StringIO("\n\n")
        assert list(load_operations(stream)) == []

    def test_malformed_line_reports_number(self):
        stream = io.StringIO('{"op": "insert"\n')
        with pytest.raises(ValueError, match="line 1"):
            list(load_operations(stream))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=30))
    def test_property_roundtrip(self, script):
        backlog = Backlog()
        tt = 0
        surrogate = 0
        live = []
        for is_delete in script:
            tt += 1
            if is_delete and live:
                backlog.record_delete(live.pop(0), Timestamp(tt))
            else:
                surrogate += 1
                backlog.record_insert(event_element(surrogate, tt, tt - 1))
                live.append(surrogate)
        buffer = io.StringIO()
        dump_operations(backlog.operations, buffer)
        buffer.seek(0)
        replayed = Backlog()
        for operation in load_operations(buffer):
            if operation.element is not None:
                replayed.record_insert(operation.element)
            else:
                replayed.record_delete(operation.element_surrogate, operation.tt)
        for probe in range(0, tt + 2):
            assert replayed.state_at(Timestamp(probe)) == backlog.state_at(
                Timestamp(probe)
            )


class TestFormats:
    """Both on-disk formats replay to the same backlog."""

    def sample_backlog(self):
        backlog = Backlog()
        backlog.record_insert(event_element(1, 10, 5, v=1))
        backlog.record_modification(1, event_element(2, 20, 5, v=2))
        backlog.record_insert(event_element(3, 30, 25))
        backlog.record_delete(3, Timestamp(40))
        return backlog

    @pytest.mark.parametrize("format", ["v0", "v1"])
    def test_roundtrip_under_both_formats(self, tmp_path, format):
        backlog = self.sample_backlog()
        path = str(tmp_path / f"ops.{format}")
        assert dump_backlog(backlog, path, format=format) == 5
        loaded = load_backlog(path)
        for tt in (10, 19, 20, 30, 40, 99):
            assert loaded.state_at(Timestamp(tt)) == backlog.state_at(Timestamp(tt))

    def test_v0_dump_is_plain_json_lines(self, tmp_path):
        """The v0 writer still produces the original line format, readable
        by the strict v0 loader."""
        backlog = self.sample_backlog()
        path = str(tmp_path / "ops.jsonl")
        dump_backlog(backlog, path, format="v0")
        with open(path, encoding="utf-8") as handle:
            operations = list(load_operations(handle))
        assert len(operations) == 5

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown log format"):
            dump_backlog(Backlog(), str(tmp_path / "x"), format="v2")


class TestModificationLineage:
    """load_backlog pairs DELETE/INSERT into modifications by lineage,
    not by time-stamp coincidence alone."""

    def test_unrelated_same_stamp_ops_stay_separate(self, tmp_path):
        """A delete of object A and an insert of object B at the same tt
        must NOT merge into a (bogus) modification of A into B."""
        backlog = Backlog()
        backlog.record_insert(event_element(1, 10, 5))  # obj-1
        backlog.record_delete(1, Timestamp(30))
        backlog.record_insert(event_element(2, 30, 25), coincident=True)  # obj-2
        path = str(tmp_path / "ops.jsonl")
        dump_backlog(backlog, path, format="v0")
        # Strip the dump-time lineage markers: simulate a legacy log.
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text.replace(', "replaced_by": 2', ""))
        loaded = load_backlog(path)
        for tt in (10, 29, 30, 31):
            assert loaded.state_at(Timestamp(tt)) == backlog.state_at(Timestamp(tt))
        # Not a modification: object lineages differ.
        ops = loaded.operations
        assert [op.kind.value for op in ops] == ["insert", "delete", "insert"]

    def test_same_object_same_stamp_pairs_as_modification(self, tmp_path):
        backlog = Backlog()
        backlog.record_insert(event_element(1, 10, 5))
        backlog.record_modification(1, event_element(2, 20, 6))
        path = str(tmp_path / "ops.jsonl")
        dump_backlog(backlog, path, format="v0")
        loaded = load_backlog(path)
        assert set(loaded.state_at(Timestamp(20))) == {2}
        assert set(loaded.state_at(Timestamp(19))) == {1}

    def test_coincident_runs_load(self, tmp_path):
        """Several operations sharing one transaction stamp (an engine
        batch) replay without tripping the strict-ordering check --
        the pre-fix loader raised ValueError here."""
        backlog = Backlog()
        backlog.record_insert(event_element(1, 10, 5))
        backlog.record_insert(event_element(2, 50, 45), coincident=True)
        backlog.record_insert(event_element(3, 50, 46), coincident=True)
        backlog.record_delete(2, Timestamp(50), coincident=True)
        path = str(tmp_path / "ops.jsonl")
        dump_backlog(backlog, path, format="v0")
        loaded = load_backlog(path)
        assert set(loaded.state_at(Timestamp(50))) == {1, 3}
        assert set(loaded.state_at(Timestamp(49))) == {1}
