"""Tests for JSON-lines backlog persistence."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.chronos.interval import Interval
from repro.chronos.timestamp import FOREVER, Timestamp
from repro.relation.element import Element
from repro.storage.backlog import Backlog
from repro.storage.logfile import (
    dump_backlog,
    dump_operations,
    load_backlog,
    load_operations,
)


def event_element(surrogate, tt, vt, **varying):
    return Element(
        element_surrogate=surrogate,
        object_surrogate=f"obj-{surrogate}",
        tt_start=Timestamp(tt),
        vt=Timestamp(vt),
        time_varying=varying,
        user_times={"signed": Timestamp(vt - 1)},
    )


class TestRoundTrip:
    def test_file_roundtrip(self, tmp_path):
        backlog = Backlog()
        backlog.record_insert(event_element(1, 10, 5, v=1))
        backlog.record_insert(event_element(2, 20, 15, v="two"))
        backlog.record_delete(1, Timestamp(30))
        path = str(tmp_path / "ops.jsonl")
        assert dump_backlog(backlog, path) == 3

        loaded = load_backlog(path)
        assert len(loaded) == 3
        for tt in (10, 20, 25, 30, 100):
            assert loaded.state_at(Timestamp(tt)) == backlog.state_at(Timestamp(tt))
        reloaded = loaded.current_state()[2]
        assert reloaded.time_varying == {"v": "two"}
        assert reloaded.user_times == {"signed": Timestamp(14)}

    def test_interval_and_unbounded_endpoints(self, tmp_path):
        backlog = Backlog()
        backlog.record_insert(
            Element(
                element_surrogate=1,
                object_surrogate=None,
                tt_start=Timestamp(10),
                vt=Interval(Timestamp(0), FOREVER),
            )
        )
        path = str(tmp_path / "ops.jsonl")
        dump_backlog(backlog, path)
        loaded = load_backlog(path)
        element = loaded.current_state()[1]
        assert element.vt.end is FOREVER
        assert element.object_surrogate is None

    def test_modification_pairs_survive(self, tmp_path):
        backlog = Backlog()
        backlog.record_insert(event_element(1, 10, 5))
        backlog.record_modification(1, event_element(2, 20, 5))
        path = str(tmp_path / "ops.jsonl")
        dump_backlog(backlog, path)
        loaded = load_backlog(path)
        assert sorted(loaded.state_at(Timestamp(20))) == [2]
        assert sorted(loaded.state_at(Timestamp(19))) == [1]

    def test_blank_lines_ignored(self):
        stream = io.StringIO("\n\n")
        assert list(load_operations(stream)) == []

    def test_malformed_line_reports_number(self):
        stream = io.StringIO('{"op": "insert"\n')
        with pytest.raises(ValueError, match="line 1"):
            list(load_operations(stream))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=30))
    def test_property_roundtrip(self, script):
        backlog = Backlog()
        tt = 0
        surrogate = 0
        live = []
        for is_delete in script:
            tt += 1
            if is_delete and live:
                backlog.record_delete(live.pop(0), Timestamp(tt))
            else:
                surrogate += 1
                backlog.record_insert(event_element(surrogate, tt, tt - 1))
                live.append(surrogate)
        buffer = io.StringIO()
        dump_operations(backlog.operations, buffer)
        buffer.seek(0)
        replayed = Backlog()
        for operation in load_operations(buffer):
            if operation.element is not None:
                replayed.record_insert(operation.element)
            else:
                replayed.record_delete(operation.element_surrogate, operation.tt)
        for probe in range(0, tt + 2):
            assert replayed.state_at(Timestamp(probe)) == backlog.state_at(
                Timestamp(probe)
            )
