"""The columnar stamp sidecar: encoding, kernels, late materialization,
the object-path fallback -- and the differential property that flipping
``REPRO_COLUMNAR`` never changes an answer.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from hypothesis import given, settings

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.interval import Interval
from repro.chronos.timestamp import FOREVER, Timestamp
from repro.query import (
    BitemporalSlice,
    Rollback,
    Scan,
    ValidOverlap,
    ValidTimeslice,
    operators,
)
from repro.relation.schema import TemporalSchema, ValidTimeKind
from repro.relation.temporal_relation import TemporalRelation
from repro.storage.columnar import (
    NEG_SENTINEL,
    POS_SENTINEL,
    StampColumns,
    positions_live,
    positions_overlapping,
    positions_stored_at,
    positions_valid_at,
)
from repro.storage.memory import MemoryEngine
from tests.storage.test_segments import (
    all_answers,
    parallel_env,
    replay,
    segment_workloads,
    signature,
)


@contextmanager
def columnar_env(value):
    """Temporarily pin REPRO_COLUMNAR ('0'/'1' or None to unset)."""
    old = os.environ.get("REPRO_COLUMNAR")
    if value is None:
        os.environ.pop("REPRO_COLUMNAR", None)
    else:
        os.environ["REPRO_COLUMNAR"] = value
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_COLUMNAR", None)
        else:
            os.environ["REPRO_COLUMNAR"] = old


def build_events(offsets, specializations=(), segment_size=8, vt_index=False):
    schema = TemporalSchema(name="r", specializations=list(specializations))
    clock = SimulatedWallClock(start=0)
    engine = MemoryEngine(maintain_vt_index=vt_index, segment_size=segment_size)
    relation = TemporalRelation(schema, clock=clock, keep_backlog=False, engine=engine)
    for i, offset in enumerate(offsets):
        clock.advance_to(Timestamp(10 * i))
        relation.insert("o", Timestamp(10 * i + offset), {})
    return relation, clock


def build_intervals(spans, segment_size=8):
    schema = TemporalSchema(name="r", valid_time_kind=ValidTimeKind.INTERVAL)
    clock = SimulatedWallClock(start=0)
    engine = MemoryEngine(maintain_vt_index=False, segment_size=segment_size)
    relation = TemporalRelation(schema, clock=clock, keep_backlog=False, engine=engine)
    for i, (start, end) in enumerate(spans):
        clock.advance_to(Timestamp(10 * i))
        relation.insert("o", Interval(Timestamp(start), Timestamp(end)), {})
    return relation, clock


#: One second in microsecond coordinates (Timestamp's default unit).
S = Timestamp(1).microseconds


class TestStampColumnEncoding:
    def test_event_rows_use_unit_intervals(self):
        with columnar_env("1"):
            relation, _clock = build_events([3, 7])
        columns = relation.engine.transaction_index.store.columns
        assert columns is not None
        assert list(columns.tt_start) == [0, 10 * S]
        # Open existence intervals carry the positive sentinel.
        assert list(columns.tt_stop) == [POS_SENTINEL, POS_SENTINEL]
        assert list(columns.vt_start) == [3 * S, 17 * S]
        assert list(columns.vt_stop) == [3 * S + 1, 17 * S + 1]
        assert bytes(columns.live) == b"\x01\x01"
        # Integer probes make the shared predicate exact equality.
        assert positions_valid_at(columns, 0, 2, 3 * S) == [0]
        assert positions_valid_at(columns, 0, 2, 3 * S + 1) == []

    def test_interval_rows_keep_half_open_bounds(self):
        with columnar_env("1"):
            relation, _clock = build_intervals([(5, 20), (30, 40)])
        columns = relation.engine.transaction_index.store.columns
        assert list(columns.vt_start) == [5 * S, 30 * S]
        assert list(columns.vt_stop) == [20 * S, 40 * S]
        # Half-open: the end point itself is excluded.
        assert positions_valid_at(columns, 0, 2, 20 * S - 1) == [0]
        assert positions_valid_at(columns, 0, 2, 20 * S) == []
        # Overlap window [18s, 31s) touches both rows.
        assert positions_overlapping(columns, 0, 2, 18 * S, 31 * S) == [0, 1]
        assert positions_overlapping(columns, 0, 2, 20 * S, 30 * S) == []

    def test_unbounded_interval_endpoints_become_sentinels(self):
        schema = TemporalSchema(name="r", valid_time_kind=ValidTimeKind.INTERVAL)
        clock = SimulatedWallClock(start=0)
        with columnar_env("1"):
            engine = MemoryEngine(maintain_vt_index=False, segment_size=8)
            relation = TemporalRelation(
                schema, clock=clock, keep_backlog=False, engine=engine
            )
            relation.insert("o", Interval(Timestamp(5), FOREVER), {})
        columns = engine.transaction_index.store.columns
        assert list(columns.vt_start) == [5 * S]
        assert list(columns.vt_stop) == [POS_SENTINEL]
        assert NEG_SENTINEL < 0 < POS_SENTINEL
        # An unbounded end contains arbitrarily late probes.
        assert positions_valid_at(columns, 0, 1, 10**15) == [0]

    def test_close_rewrites_tt_stop_and_clears_live_bit(self):
        with columnar_env("1"):
            relation, clock = build_events([0, 0, 0])
            clock.advance_to(Timestamp(1000))
            victim = relation.all_elements()[1]
            relation.delete(victim.element_surrogate)
        columns = relation.engine.transaction_index.store.columns
        assert bytes(columns.live) == b"\x01\x00\x01"
        assert columns.tt_stop[1] == 1000 * S
        assert positions_live(columns, 0, 3) == [0, 2]
        # The rollback predicate still sees the closed row just before
        # the close...
        assert positions_stored_at(columns, 0, 3, 1000 * S - 1) == [0, 1, 2]
        # ...and not at or after it (half-open existence interval).
        assert positions_stored_at(columns, 0, 3, 1000 * S) == [0, 2]

    def test_stores_built_without_columnar_carry_no_columns(self):
        with columnar_env("0"):
            relation, _clock = build_events([0] * 4)
        assert relation.engine.transaction_index.store.columns is None

    def test_memory_bytes_tracks_row_count(self):
        columns = StampColumns()
        assert columns.memory_bytes() == 0
        with columnar_env("1"):
            relation, _clock = build_events([0] * 10)
        sidecar = relation.engine.transaction_index.store.columns
        assert sidecar.memory_bytes() == 10 * (4 * 8 + 1)


class TestLateMaterialization:
    """Kernels report positions examined vs Elements materialized."""

    def probe(self, relation, query, strategy):
        report = relation.explain(query)
        assert report.strategy == strategy
        return report

    def test_every_range_operator_reports_columnar_counts(self):
        with columnar_env("1"):
            relation, clock = build_events([0] * 64)
            bounded, _ = build_events(
                [(-1) ** i * 4 for i in range(64)],
                specializations=["strongly bounded(5s, 5s)"],
            )
            clock.advance_to(Timestamp(1000))
            cases = [
                (relation, ValidTimeslice(Scan(relation), Timestamp(0)), "columnar-scan"),
                (relation, Rollback(Scan(relation), Timestamp(300)), "rollback-prefix"),
                (
                    relation,
                    BitemporalSlice(Scan(relation), vt=Timestamp(0), tt=Timestamp(500)),
                    "bitemporal-prefix",
                ),
                (
                    bounded,
                    ValidTimeslice(Scan(bounded), Timestamp(104)),
                    "bounded-tt-window",
                ),
                (
                    bounded,
                    ValidOverlap(
                        Scan(bounded), Interval(Timestamp(100), Timestamp(140))
                    ),
                    "bounded-tt-window-overlap",
                ),
            ]
            for rel, query, strategy in cases:
                report = self.probe(rel, query, strategy)
                assert report.columnar_positions_examined is not None, strategy
                assert report.columnar_elements_materialized is not None, strategy
                assert (
                    report.columnar_elements_materialized
                    <= report.columnar_positions_examined
                ), strategy
                assert report.columnar_elements_materialized == report.returned
                assert "columnar  :" in report.render()

    def test_object_path_reports_no_columnar_counts(self):
        with columnar_env("0"):
            relation, _clock = build_events([0] * 64)
            report = self.probe(
                relation,
                ValidTimeslice(Scan(relation), Timestamp(0)),
                "segment-pruned-scan",
            )
        assert report.columnar_positions_examined is None
        assert report.columnar_elements_materialized is None
        assert "columnar  :" not in report.render()

    def test_examined_counts_match_across_paths(self):
        """`examined` keeps its meaning (rows the scan touched), so the
        baseline-checked counters are identical on both paths."""
        with columnar_env("1"):
            relation, _clock = build_events([0] * 64)
            query = ValidTimeslice(Scan(relation), Timestamp(0))
            columnar = relation.explain(query)
            with columnar_env("0"):
                fallback = relation.explain(query)
        assert columnar.examined == fallback.examined == 8
        assert columnar.segments_scanned == fallback.segments_scanned == 1
        assert columnar.segments_pruned == fallback.segments_pruned == 7
        assert signature(columnar.results) == signature(fallback.results)


class TestDynamicFallback:
    """Flipping REPRO_COLUMNAR at query time deterministically selects
    the path, even on stores that already carry columns."""

    def test_columnar_store_uses_object_path_when_disabled(self):
        with columnar_env("1"):
            relation, _clock = build_events([0] * 32)
        assert relation.engine.transaction_index.store.columns is not None
        with columnar_env("0"):
            assert not operators.columnar_active(relation)
            stats = operators.SegmentStats()
            matches, _examined = operators.timeslice_segment_pruned(
                relation, Timestamp(0), stats
            )
            assert stats.columnar is False
            assert stats.positions_examined == 0
            disabled = signature(matches)
        with columnar_env("1"):
            assert operators.columnar_active(relation)
            stats = operators.SegmentStats()
            matches, _examined = operators.timeslice_segment_pruned(
                relation, Timestamp(0), stats
            )
            assert stats.columnar is True
            assert stats.positions_examined > 0
            assert stats.materialized == len(matches)
            enabled = signature(matches)
        assert enabled == disabled

    def test_object_store_never_goes_columnar(self):
        with columnar_env("0"):
            relation, _clock = build_events([0] * 32)
        with columnar_env("1"):
            # No sidecar was built, so the kernels cannot run.
            assert not operators.columnar_active(relation)
            stats = operators.SegmentStats()
            operators.timeslice_segment_pruned(relation, Timestamp(0), stats)
            assert stats.columnar is False

    def test_parallel_workers_return_position_lists(self):
        with columnar_env("1"), parallel_env("1"):
            relation, _clock = build_events([0] * 80, segment_size=4)
            stats = operators.SegmentStats()
            matches, _examined = operators.timeslice_segment_pruned(
                relation, Timestamp(0), stats
            )
            assert stats.columnar is True
        with columnar_env("1"), parallel_env("0"):
            sequential, _examined = operators.timeslice_segment_pruned(
                relation, Timestamp(0)
            )
        assert signature(matches) == signature(sequential)


class TestCurrentStateFeed:
    def test_view_rebuild_matches_object_scan(self):
        with columnar_env("1"):
            relation, clock = build_events([0] * 40, segment_size=8)
            clock.advance_to(Timestamp(2000))
            for element in relation.all_elements()[::3]:
                relation.delete(element.element_surrogate)
            store = relation.engine.transaction_index.store
            store.invalidate_view()
            from_columns = signature(relation.engine.current())
        with columnar_env("0"):
            store.invalidate_view()
            from_objects = signature(relation.engine.current())
        assert from_columns == from_objects
        assert len(from_columns) == relation.live_count()


# -- the differential property -----------------------------------------------------


@settings(deadline=None)
@given(segment_workloads())
def test_columnar_and_object_paths_match(workload):
    """Element-for-element identical answers: columnar on/off, segment
    sizes tiny and default, parallelism on and off.

    The reference is the object path on a never-sealing store run
    sequentially; every other configuration must agree on every read
    path (scan, current, as-of, valid-at, overlap, and the range-shaped
    operators) after the same randomized interleaving of appends,
    batches, logical deletes, and vacuums.
    """
    ops, probes = workload
    with columnar_env("0"), parallel_env("0"):
        reference = all_answers(replay(ops, 100_000), probes)
    for columnar in ("1", "0"):
        for segment_size in (2, 5, None):
            for parallel in ("0", "1"):
                with columnar_env(columnar), parallel_env(parallel):
                    answers = all_answers(replay(ops, segment_size), probes)
                assert answers == reference, (
                    f"divergence at columnar={columnar} "
                    f"segment_size={segment_size} parallel={parallel}"
                )
