"""Unit and property tests for backlog relations and snapshot caching."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chronos.timestamp import FOREVER, Timestamp
from repro.relation.element import Element
from repro.relation.errors import ElementNotFound
from repro.storage.backlog import Backlog, Operation, OperationKind
from repro.storage.memory import MemoryEngine
from repro.storage.snapshot import SnapshotCache


def event_element(surrogate: int, tt: int, vt: int) -> Element:
    return Element(
        element_surrogate=surrogate,
        object_surrogate="obj",
        tt_start=Timestamp(tt),
        vt=Timestamp(vt),
    )


class TestOperations:
    def test_insert_requires_payload(self):
        with pytest.raises(ValueError):
            Operation(OperationKind.INSERT, Timestamp(1), 1, None)

    def test_delete_rejects_payload(self):
        with pytest.raises(ValueError):
            Operation(OperationKind.DELETE, Timestamp(1), 1, event_element(1, 1, 1))


class TestBacklog:
    def test_state_reconstruction(self):
        backlog = Backlog()
        backlog.record_insert(event_element(1, 10, 5))
        backlog.record_insert(event_element(2, 20, 15))
        backlog.record_delete(1, Timestamp(30))
        assert sorted(backlog.state_at(Timestamp(25))) == [1, 2]
        assert sorted(backlog.state_at(Timestamp(30))) == [2]
        assert backlog.state_at(Timestamp(5)) == {}
        assert sorted(backlog.current_state()) == [2]

    def test_operations_must_be_tt_ordered(self):
        backlog = Backlog()
        backlog.record_insert(event_element(1, 10, 5))
        with pytest.raises(ValueError, match="strictly increasing"):
            backlog.record_insert(event_element(2, 10, 5))

    def test_delete_unknown(self):
        with pytest.raises(ElementNotFound):
            Backlog().record_delete(9, Timestamp(1))

    def test_modification_shares_one_stamp(self):
        backlog = Backlog()
        backlog.record_insert(event_element(1, 10, 5))
        backlog.record_modification(1, event_element(2, 20, 5))
        assert len(backlog) == 3
        assert sorted(backlog.state_at(Timestamp(20))) == [2]
        # Exactly one new historical state: nothing between 10 and 20.
        assert sorted(backlog.state_at(Timestamp(19))) == [1]

    def test_to_elements_closes_existence_intervals(self):
        backlog = Backlog()
        backlog.record_insert(event_element(1, 10, 5))
        backlog.record_delete(1, Timestamp(30))
        backlog.record_insert(event_element(2, 40, 35))
        elements = {e.element_surrogate: e for e in backlog.to_elements()}
        assert elements[1].tt_stop == Timestamp(30)
        assert elements[2].tt_stop is FOREVER


class TestCompaction:
    def test_compacted_answers_match_after_horizon(self):
        backlog = Backlog()
        backlog.record_insert(event_element(1, 10, 1))
        backlog.record_insert(event_element(2, 20, 2))
        backlog.record_delete(1, Timestamp(25))
        backlog.record_insert(event_element(3, 30, 3))
        backlog.record_delete(2, Timestamp(35))
        for i in range(4, 11):
            backlog.record_insert(event_element(i, i * 10, i))
        compacted = backlog.compact(Timestamp(37))
        assert len(compacted) < len(backlog)
        for tt in (37, 40, 75, 100, 200):
            assert sorted(compacted.state_at(Timestamp(tt))) == sorted(
                backlog.state_at(Timestamp(tt))
            ), tt

    def test_compaction_discards_dead_prefix(self):
        backlog = Backlog()
        backlog.record_insert(event_element(1, 10, 5))
        backlog.record_delete(1, Timestamp(20))
        backlog.record_insert(event_element(2, 30, 25))
        compacted = backlog.compact(Timestamp(25))
        assert len(compacted) == 1  # only element 2 remains

    def test_compact_in_place_matches_compact(self):
        backlog = Backlog()
        for i in range(1, 8):
            backlog.record_insert(event_element(i, i * 10, i))
        backlog.record_delete(1, Timestamp(75))
        reference = backlog.compact(Timestamp(40))
        discarded = backlog.compact_in_place(Timestamp(40))
        assert discarded == 8 - len(reference)
        for tt in (40, 50, 75, 100):
            assert backlog.state_at(Timestamp(tt)) == reference.state_at(Timestamp(tt))


class TestCoincidentStamps:
    def test_coincident_allows_equal_stamps(self):
        backlog = Backlog()
        backlog.record_insert(event_element(1, 10, 5))
        backlog.record_insert(event_element(2, 10, 6), coincident=True)
        backlog.record_delete(1, Timestamp(10), coincident=True)
        assert sorted(backlog.state_at(Timestamp(10))) == [2]

    def test_coincident_still_rejects_regression(self):
        backlog = Backlog()
        backlog.record_insert(event_element(1, 10, 5))
        with pytest.raises(ValueError, match="non-decreasing"):
            backlog.record_insert(event_element(2, 9, 5), coincident=True)

    def test_default_remains_strict(self):
        backlog = Backlog()
        backlog.record_insert(event_element(1, 10, 5))
        with pytest.raises(ValueError, match="strictly increasing"):
            backlog.record_delete(1, Timestamp(10))


class TestSnapshotCache:
    def test_states_agree_with_backlog(self):
        backlog = Backlog()
        tt = 0
        live = []
        for i in range(1, 120):
            tt += 1
            if i % 4 == 0 and live:
                backlog.record_delete(live.pop(0), Timestamp(tt))
            else:
                backlog.record_insert(event_element(i, tt, i))
                live.append(i)
        cache = SnapshotCache(backlog, interval=16)
        for probe in range(0, tt + 2, 7):
            assert cache.state_at(Timestamp(probe)) == backlog.state_at(Timestamp(probe))

    def test_snapshots_created_lazily(self):
        backlog = Backlog()
        cache = SnapshotCache(backlog, interval=4)
        for i in range(1, 10):
            backlog.record_insert(event_element(i, i, i))
        assert cache.snapshot_count == 0
        cache.refresh()
        assert cache.snapshot_count == 2  # 9 ops, every 4th

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            SnapshotCache(Backlog(), interval=0)

    def test_cache_invalidated_by_in_place_vacuum(self):
        """Regression: a vacuum rewrites the backlog's operation prefix
        under the cache; cached snapshots must be discarded, not served
        stale."""
        backlog = Backlog()
        for i in range(1, 13):
            backlog.record_insert(event_element(i, i * 10, i))
        backlog.record_delete(1, Timestamp(125))
        backlog.record_delete(2, Timestamp(126))
        cache = SnapshotCache(backlog, interval=4)
        cache.refresh()
        assert cache.snapshot_count > 0
        backlog.compact_in_place(Timestamp(126))
        for tt in (126, 127, 130, 200):
            assert cache.state_at(Timestamp(tt)) == backlog.state_at(Timestamp(tt))

    def test_cache_invalidated_when_backlog_shrinks_below_coverage(self):
        backlog = Backlog()
        for i in range(1, 30):
            backlog.record_insert(event_element(i, i * 10, i))
        for i in range(1, 28):
            backlog.record_delete(i, Timestamp(300 + i), coincident=(i > 1))
        cache = SnapshotCache(backlog, interval=8)
        cache.refresh()
        covered_before = cache.snapshot_count
        backlog.compact_in_place(Timestamp(330))  # history collapses hard
        assert len(backlog) < covered_before * 8
        assert cache.state_at(Timestamp(400)) == backlog.state_at(Timestamp(400))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.booleans(), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=16),
    )
    def test_property_snapshot_equals_replay(self, script, interval):
        backlog = Backlog()
        tt = 0
        surrogate = 0
        live = []
        for is_delete in script:
            tt += 1
            if is_delete and live:
                backlog.record_delete(live.pop(), Timestamp(tt))
            else:
                surrogate += 1
                backlog.record_insert(event_element(surrogate, tt, tt))
                live.append(surrogate)
        cache = SnapshotCache(backlog, interval=interval)
        for probe in range(0, tt + 2):
            assert cache.state_at(Timestamp(probe)) == backlog.state_at(Timestamp(probe))


class TestBacklogEngineAgreement:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=40))
    def test_memory_engine_as_of_equals_backlog_replay(self, script):
        """The tuple-store and the backlog are two representations of
        the same conceptual relation (Section 2)."""
        engine = MemoryEngine()
        backlog = Backlog()
        tt = 0
        surrogate = 0
        live = []
        for is_delete in script:
            tt += 1
            if is_delete and live:
                victim = live.pop(0)
                engine.close_element(victim, Timestamp(tt))
                backlog.record_delete(victim, Timestamp(tt))
            else:
                surrogate += 1
                element = event_element(surrogate, tt, tt)
                engine.append(element)
                backlog.record_insert(element)
                live.append(surrogate)
        for probe in range(0, tt + 2):
            assert sorted(e.element_surrogate for e in engine.as_of(Timestamp(probe))) == sorted(
                backlog.state_at(Timestamp(probe))
            )
