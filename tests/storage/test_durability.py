"""Crash safety of the log-file engine: the WAL format, torn-tail
recovery, the crash matrix, and injected write-path faults.

The central invariant, proved exhaustively and property-based below:
for a workload crashed at *any* byte offset of the log, reopening
succeeds and the recovered state equals the longest committed prefix of
the workload -- never a torn half-batch, never an unreadable history.
"""

from __future__ import annotations

import errno
import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.chronos.timestamp import Timestamp
from repro.observability import metrics
from repro.relation.element import Element
from repro.storage import wal
from repro.storage.logfile import LogFileEngine, read_log_batches
from repro.storage.wal import recover_file, sidecar_path
from tests.faults import FaultyFile, arm


def event_element(surrogate, tt, vt, who=None, **varying):
    return Element(
        element_surrogate=surrogate,
        object_surrogate=who if who is not None else f"obj-{surrogate}",
        tt_start=Timestamp(tt),
        vt=Timestamp(vt),
        time_varying=varying,
    )


def signature(engine):
    return sorted(
        (
            e.element_surrogate,
            e.tt_start.microseconds,
            None if e.is_current else e.tt_stop.microseconds,
        )
        for e in engine.scan()
    )


def v0_insert_line(surrogate, tt, vt, who=None):
    from repro.storage.logfile import _encode_element

    element = event_element(surrogate, tt, vt, who=who)
    return (
        json.dumps(
            {
                "op": "insert",
                "tt": tt,
                "surrogate": surrogate,
                "element": _encode_element(element),
            },
            sort_keys=True,
        )
        + "\n"
    )


def v0_delete_line(surrogate, tt, **extra):
    record = {"op": "delete", "tt": tt, "surrogate": surrogate}
    record.update(extra)
    return json.dumps(record, sort_keys=True) + "\n"


# -- the torn-tail reproduction (the original bug) ----------------------------------


class TestTornTailReproduction:
    """Truncate the last record of a live log; reopen must succeed."""

    def build(self, path):
        engine = LogFileEngine(path)
        engine.append(event_element(1, 10, 5))
        engine.extend([event_element(2, 20, 6), event_element(3, 30, 7)])
        committed = signature(engine)
        committed_bytes = engine.log_bytes()
        engine.close_element(1, Timestamp(40))
        engine.close()
        return committed, committed_bytes

    def test_v1_reopen_after_torn_final_record(self, tmp_path):
        path = str(tmp_path / "live.wal")
        committed, committed_bytes = self.build(path)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:-3])  # tear the final (delete) record

        with metrics.enabled_scope(fresh=True) as registry:
            reopened = LogFileEngine(path)
        report = reopened.last_recovery
        assert signature(reopened) == committed
        assert not report.clean
        assert report.committed_bytes == committed_bytes
        assert report.truncated_bytes == len(data) - 3 - committed_bytes
        assert os.path.getsize(path) == committed_bytes
        counters = registry.snapshot()["counters"]
        assert counters["storage.logfile.recovery.truncations"] == 1
        assert counters["storage.logfile.recovery.truncated_bytes"] == report.truncated_bytes
        # The torn bytes are preserved, not destroyed.
        assert os.path.getsize(sidecar_path(path)) == report.truncated_bytes
        reopened.close()

    def test_v0_reopen_after_torn_final_line(self, tmp_path):
        path = str(tmp_path / "legacy.jsonl")
        lines = v0_insert_line(1, 10, 5) + v0_insert_line(2, 20, 6)
        torn = v0_insert_line(3, 30, 7)[:-10]  # mid-record, no newline
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(lines + torn)

        reopened = LogFileEngine(path)
        assert reopened.log_format == "v0"
        assert [e.element_surrogate for e in reopened.scan()] == [1, 2]
        assert reopened.last_recovery.truncated_bytes == len(torn)
        assert os.path.getsize(path) == len(lines)
        # The legacy engine keeps appending readable v0 lines.
        reopened.append(event_element(3, 30, 7))
        reopened.close()
        again = LogFileEngine(path)
        assert [e.element_surrogate for e in again.scan()] == [1, 2, 3]
        again.close()

    def test_checksum_corruption_is_caught_and_quarantined(self, tmp_path):
        path = str(tmp_path / "flip.wal")
        committed, committed_bytes = self.build(path)
        with open(path, "r+b") as handle:
            handle.seek(committed_bytes + 12)  # inside the final record's payload
            byte = handle.read(1)
            handle.seek(committed_bytes + 12)
            handle.write(bytes([byte[0] ^ 0xFF]))
        reopened = LogFileEngine(path)
        assert signature(reopened) == committed
        assert "checksum mismatch" in reopened.last_recovery.damage
        reopened.close()

    def test_strict_read_refuses_torn_logs(self, tmp_path):
        path = str(tmp_path / "strict.wal")
        self.build(path)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:-3])
        with pytest.raises(ValueError, match="repro recover"):
            list(read_log_batches(path))


# -- the crash matrix ---------------------------------------------------------------


def run_workload(path, fsync, ops):
    """Apply ops; return [(committed_byte_offset, signature)] checkpoints."""
    engine = LogFileEngine(path, fsync=fsync)
    checkpoints = [(0, [])]
    for op in ops:
        if op[0] == "append":
            engine.append(op[1])
        elif op[0] == "extend":
            engine.extend(op[1])
        else:
            engine.close_element(op[1], op[2])
        checkpoints.append((engine.log_bytes(), signature(engine)))
    engine.close()
    return checkpoints


def assert_crash_matrix(tmp_path, ops, fsync):
    """Reopen succeeds at EVERY byte-length prefix of the log, and the
    recovered state is the longest committed prefix's state."""
    path = str(tmp_path / "matrix.wal")
    checkpoints = run_workload(path, fsync, ops)
    with open(path, "rb") as handle:
        data = handle.read()
    crash_path = str(tmp_path / "crash.wal")
    for offset in range(len(data) + 1):
        with open(crash_path, "wb") as handle:
            handle.write(data[:offset])
        for stale in (sidecar_path(crash_path),):
            if os.path.exists(stale):
                os.remove(stale)
        engine = LogFileEngine(crash_path, fsync=fsync)
        expected = max(
            (c for c in checkpoints if c[0] <= offset), key=lambda c: c[0]
        )[1]
        assert signature(engine) == expected, f"crash at byte {offset}"
        engine.close()


MATRIX_OPS = [
    ("append", event_element(1, 10, 5, reading=1.5)),
    ("extend", [event_element(2, 20, 6), event_element(3, 30, 7, note="x")]),
    ("close", 1, Timestamp(40)),
    ("append", event_element(4, 50, 8)),
    ("close", 3, Timestamp(60)),
]


@pytest.mark.faults
@pytest.mark.parametrize("fsync", [True, False])
def test_crash_matrix_every_byte_offset(tmp_path, fsync):
    assert_crash_matrix(tmp_path, MATRIX_OPS, fsync)


@st.composite
def crash_workloads(draw):
    """Small random workloads: appends, batches, closes."""
    ops = []
    tick = 0
    surrogate = 0
    live = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        kind = draw(st.sampled_from(["append", "extend", "close"]))
        tick += 10
        if kind == "close" and live:
            ops.append(("close", live.pop(0), Timestamp(tick)))
        elif kind == "extend":
            batch = []
            for _ in range(draw(st.integers(min_value=1, max_value=3))):
                surrogate += 1
                tick += 1
                batch.append(event_element(surrogate, tick, tick - 5))
                live.append(surrogate)
            ops.append(("extend", batch))
        else:
            surrogate += 1
            ops.append(("append", event_element(surrogate, tick, tick - 5)))
            live.append(surrogate)
    return ops


@pytest.mark.faults
@settings(deadline=None, max_examples=15)
@given(ops=crash_workloads(), fsync=st.booleans())
def test_crash_matrix_property(tmp_path_factory, ops, fsync):
    tmp_path = tmp_path_factory.mktemp("crash-matrix")
    assert_crash_matrix(tmp_path, ops, fsync)


# -- injected write-path faults -----------------------------------------------------


@pytest.mark.faults
class TestInjectedFaults:
    """The mirror and the disk can never disagree: a failed write is a
    failed operation, not an acknowledged-in-memory ghost."""

    def make(self, tmp_path, name="faulty.wal", fsync=True):
        engine = LogFileEngine(str(tmp_path / name), fsync=fsync)
        engine.append(event_element(1, 10, 5))
        return engine, signature(engine)

    @pytest.mark.parametrize("kind", ["enospc", "torn", "short", "fsync"])
    def test_failed_append_leaves_mirror_and_disk_consistent(self, tmp_path, kind):
        engine, before = self.make(tmp_path, name=f"{kind}.wal")
        # write is operation 0, its fsync is operation 1
        arm(engine, fail_at=1 if kind == "fsync" else 0, kind=kind)
        with pytest.raises(OSError):
            engine.append(event_element(2, 20, 6))
        # Mirror rolled nothing forward: the rejected element is invisible.
        assert signature(engine) == before
        # The on-disk tail was repaired in-process...
        assert engine.log_bytes() == os.path.getsize(engine.path)
        # ...so later acknowledged writes replay after reopen.
        engine.append(event_element(3, 30, 7))
        after = signature(engine)
        engine.close()
        reopened = LogFileEngine(engine.path)
        assert reopened.last_recovery.clean
        assert signature(reopened) == after
        reopened.close()

    def test_failed_extend_is_all_or_nothing(self, tmp_path):
        engine, before = self.make(tmp_path)
        arm(engine, fail_at=0, kind="torn")
        with pytest.raises(OSError):
            engine.extend([event_element(2, 20, 6), event_element(3, 30, 7)])
        assert signature(engine) == before
        engine.close()
        reopened = LogFileEngine(engine.path)
        assert signature(reopened) == before
        reopened.close()

    def test_failed_close_element_keeps_element_current(self, tmp_path):
        engine, _ = self.make(tmp_path)
        arm(engine, fail_at=0, kind="enospc")
        with pytest.raises(OSError):
            engine.close_element(1, Timestamp(40))
        assert engine.get(1).is_current
        engine.close()
        reopened = LogFileEngine(engine.path)
        assert reopened.get(1).is_current
        reopened.close()

    def test_fault_counts_write_rollback_metric(self, tmp_path):
        engine, _ = self.make(tmp_path)
        arm(engine, fail_at=0, kind="torn")
        with metrics.enabled_scope(fresh=True) as registry:
            with pytest.raises(OSError):
                engine.append(event_element(2, 20, 6))
        assert registry.snapshot()["counters"]["storage.logfile.write_rollbacks"] == 1
        engine.close()

    def test_validation_failure_writes_nothing(self, tmp_path):
        engine, before = self.make(tmp_path)
        bytes_before = engine.log_bytes()
        with pytest.raises(ValueError):
            engine.append(event_element(1, 20, 6))  # duplicate surrogate
        with pytest.raises(ValueError):
            engine.extend([event_element(2, 20, 6), event_element(2, 21, 6)])
        assert engine.log_bytes() == bytes_before
        assert signature(engine) == before
        engine.close()

    def test_faulty_file_self_check(self, tmp_path):
        handle = open(str(tmp_path / "raw.bin"), "ab")
        faulty = FaultyFile(handle, fail_at=1, kind="enospc")
        faulty.write(b"ok")  # operation 0 passes
        with pytest.raises(OSError) as caught:
            faulty.write(b"boom")
        assert caught.value.errno == errno.ENOSPC
        faulty.write(b"after")  # one-shot: subsequent operations pass
        faulty.close()


# -- recovery API and format details ------------------------------------------------


class TestRecoveryDetails:
    def test_dry_run_touches_nothing(self, tmp_path):
        path = str(tmp_path / "dry.wal")
        engine = LogFileEngine(path)
        engine.append(event_element(1, 10, 5))
        engine.close()
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:-4])
        _batches, report = recover_file(path, dry_run=True)
        assert not report.clean and report.dry_run
        assert os.path.getsize(path) == len(data) - 4  # untouched
        assert not os.path.exists(sidecar_path(path))

    def test_uncommitted_batch_is_discarded_on_replay(self, tmp_path):
        """Ops present and intact but missing their commit marker never apply."""
        path = str(tmp_path / "uncommitted.wal")
        engine = LogFileEngine(path)
        engine.append(event_element(1, 10, 5))
        engine.close()
        record = {
            "op": "insert",
            "tt": 20,
            "surrogate": 2,
            "element": json.loads(
                v0_insert_line(2, 20, 6).strip()
            )["element"],
        }
        with open(path, "ab") as handle:
            handle.write(wal.frame_record(record))  # no commit marker
        reopened = LogFileEngine(path)
        assert [e.element_surrogate for e in reopened.scan()] == [1]
        assert reopened.last_recovery.discarded_records == 1
        reopened.close()

    def test_commit_marker_arity_mismatch_is_damage(self, tmp_path):
        path = str(tmp_path / "arity.wal")
        with open(path, "wb") as handle:
            handle.write(wal.MAGIC)
            handle.write(wal.commit_marker(3))  # claims 3 ops, none precede
        engine = LogFileEngine(path)
        assert len(engine) == 0
        assert "commit marker" in engine.last_recovery.damage
        engine.close()

    def test_empty_and_header_only_files_are_clean(self, tmp_path):
        path = str(tmp_path / "empty.wal")
        engine = LogFileEngine(path)
        assert engine.last_recovery is None  # nothing to recover
        engine.close()
        reopened = LogFileEngine(path)  # header-only file
        assert reopened.last_recovery.clean
        reopened.close()

    def test_repeated_recoveries_append_to_sidecar(self, tmp_path):
        path = str(tmp_path / "repeat.wal")
        sizes = []
        for round_number in (1, 2):
            engine = LogFileEngine(path)
            engine.append(event_element(round_number, round_number * 10, 5))
            size = engine.log_bytes()
            engine.close()
            with open(path, "r+b") as handle:
                handle.truncate(size - 2)  # tear this round's append
            recover_file(path)
            sizes.append(os.path.getsize(sidecar_path(path)))
        assert 0 < sizes[0] < sizes[1]  # quarantine accumulates, round on round
        engine = LogFileEngine(path)
        assert engine.last_recovery.clean and len(engine) == 0
        engine.close()
