"""Tests for specialization-aware vacuuming."""

from hypothesis import given, settings, strategies as st

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.timestamp import Timestamp
from repro.query import NaiveExecutor, Planner, Scan, ValidTimeslice
from repro.relation.element import Element
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation
from repro.storage.memory import MemoryEngine
from repro.storage.vacuum import (
    tt_horizon_for_valid_floor,
    vacuum_engine,
    vacuum_relation,
)
from repro.workloads import generate_general
from tests.storage.test_segments import signature


class TestVacuumEngine:
    def build(self, deletions=True):
        schema = TemporalSchema(name="x", time_varying=("v",))
        clock = SimulatedWallClock(start=0)
        relation = TemporalRelation(schema, clock=clock, keep_backlog=False)
        elements = []
        for i in range(20):
            clock.advance_to(Timestamp(10 * i))
            elements.append(relation.insert("o", Timestamp(10 * i), {"v": i}))
        if deletions:
            for element in elements[:10:2]:
                relation.delete(element.element_surrogate)
        return relation

    def test_purges_only_pre_horizon_closures(self):
        relation = self.build()
        total = len(relation)
        current = {e.element_surrogate for e in relation.current()}
        report = vacuum_relation(relation, Timestamp(10**6))
        assert report.purged == total - len(current)
        assert {e.element_surrogate for e in relation.current()} == current

    def test_preserves_rollback_at_or_after_horizon(self):
        relation = self.build()
        horizon = Timestamp(150)
        before = {
            tt: sorted(e.element_surrogate for e in relation.as_of(Timestamp(tt)))
            for tt in range(150, 260, 10)
        }
        vacuum_relation(relation, horizon)
        for tt, expected in before.items():
            assert sorted(
                e.element_surrogate for e in relation.as_of(Timestamp(tt))
            ) == expected

    def test_report_fractions(self):
        relation = self.build()
        report = vacuum_relation(relation, Timestamp(10**6))
        assert 0 < report.space_saved_fraction < 1
        assert report.total == 20

    def test_nothing_to_purge(self):
        relation = self.build(deletions=False)
        report = vacuum_relation(relation, Timestamp(10**6))
        assert report.purged == 0

    @settings(max_examples=20, deadline=None)
    @given(horizon=st.integers(0, 800_000))
    def test_current_state_always_preserved(self, horizon):
        workload = generate_general(inserts=120, delete_rate=0.3, seed=3)
        relation = workload.relation
        current = sorted(e.element_surrogate for e in relation.current())
        compacted, _report = vacuum_engine(relation.engine, Timestamp(horizon))
        assert sorted(e.element_surrogate for e in compacted.current()) == current


class TestHorizonFromValidFloor:
    def test_bounded_relation_gives_horizon(self):
        schema = TemporalSchema(
            name="b", specializations=["strongly bounded(10s, 30s)"]
        )
        relation = TemporalRelation(schema, clock=SimulatedWallClock(start=0))
        horizon = tt_horizon_for_valid_floor(relation, Timestamp(1_000))
        # upper offset is +30s, so tt >= 1000 - 30.
        assert horizon == Timestamp(970)

    def test_unbounded_above_gives_none(self):
        schema = TemporalSchema(name="p", specializations=["predictive"])
        relation = TemporalRelation(schema, clock=SimulatedWallClock(start=0))
        assert tt_horizon_for_valid_floor(relation, Timestamp(1_000)) is None

    def test_vacuum_to_derived_horizon_preserves_timeslices(self):
        schema = TemporalSchema(
            name="b", specializations=["strongly bounded(5s, 5s)"]
        )
        clock = SimulatedWallClock(start=0)
        relation = TemporalRelation(schema, clock=clock, keep_backlog=False)
        elements = []
        for i in range(100):
            clock.advance_to(Timestamp(10 * i))
            elements.append(relation.insert("o", Timestamp(10 * i + (i % 3) - 1), {}))
        for element in elements[:40:3]:
            relation.delete(element.element_surrogate)
        floor = Timestamp(500)
        horizon = tt_horizon_for_valid_floor(relation, floor)
        expected = {
            vt: sorted(
                e.element_surrogate
                for e in NaiveExecutor().run(
                    ValidTimeslice(Scan(relation), Timestamp(vt))
                )
            )
            for vt in range(500, 1_000, 7)
        }
        vacuum_relation(relation, horizon)
        for vt, surrogates in expected.items():
            observed = sorted(
                e.element_surrogate
                for e in NaiveExecutor().run(
                    ValidTimeslice(Scan(relation), Timestamp(vt))
                )
            )
            assert observed == surrogates, vt


class TestStatisticsFreshness:
    """Planner and relation statistics must not survive an engine swap
    or a bulk extend that bypasses the relation's own mutators."""

    def build_segmented(self, count=40, specializations=()):
        schema = TemporalSchema(
            name="x", time_varying=("v",), specializations=list(specializations)
        )
        clock = SimulatedWallClock(start=0)
        engine = MemoryEngine(maintain_vt_index=False, segment_size=8)
        relation = TemporalRelation(
            schema, clock=clock, keep_backlog=False, engine=engine
        )
        for i in range(count):
            clock.advance_to(Timestamp(10 * i))
            relation.insert("o", Timestamp(10 * i), {"v": i})
        return relation, clock

    def test_vacuum_preserves_engine_configuration(self):
        relation, clock = self.build_segmented()
        clock.advance_to(Timestamp(1000))
        for element in relation.all_elements()[:30]:
            relation.delete(element.element_surrogate)
        vacuum_relation(relation, Timestamp(10**6))
        assert relation.engine.has_vt_index is False
        assert relation.engine.transaction_index.store.segment_size == 8

    def test_post_vacuum_query_replans_with_fresh_counts(self):
        # Declared bounds make the small-relation rule applicable, so
        # the strategy choice is sensitive to the cached element count.
        relation, clock = self.build_segmented(
            specializations=["strongly bounded(5s, 5s)"]
        )
        planner = Planner(relation)
        query = ValidTimeslice(Scan(relation), Timestamp(390))
        plan = planner.plan(query)
        assert plan.strategy == "bounded-tt-window"
        assert planner.relation_statistics()["elements"] == 40
        # Close everything but the last 3, then vacuum past the closures:
        # the compacted relation is small enough for the direct scan.
        clock.advance_to(Timestamp(1000))
        for element in relation.all_elements()[:37]:
            relation.delete(element.element_surrogate)
        vacuum_relation(relation, Timestamp(10**6))
        assert len(relation.engine) == 3
        # The SAME planner instance must re-derive, not reuse, its
        # cached statistics (the engine object was swapped out under it).
        assert planner.relation_statistics()["elements"] == 3
        replanned = planner.plan(query)
        assert replanned.strategy == "small-relation-scan"
        expected = signature(NaiveExecutor().run(query))
        assert signature(replanned.execute()) == expected

    def test_relation_statistics_fresh_after_vacuum(self):
        relation, clock = self.build_segmented()
        assert relation.statistics()["elements"] == 40
        clock.advance_to(Timestamp(1000))
        for element in relation.all_elements()[:20]:
            relation.delete(element.element_surrogate)
        vacuum_relation(relation, Timestamp(10**6))
        assert relation.statistics()["elements"] == 20

    def test_statistics_fresh_after_direct_engine_extend(self):
        relation, _clock = self.build_segmented(count=10)
        planner = Planner(relation)
        assert relation.statistics()["elements"] == 10
        assert planner.relation_statistics()["elements"] == 10
        last = relation.all_elements()[-1]
        extra = Element(
            element_surrogate=last.element_surrogate + 1,
            object_surrogate="o",
            tt_start=Timestamp(last.tt_start.microseconds + 1, "microsecond"),
            vt=Timestamp(5000),
        )
        # Bypass the relation: extend the engine directly.  The epoch
        # (the store's mutation counter) still catches it.
        relation.engine.extend([extra])
        assert relation.statistics()["elements"] == 11
        assert planner.relation_statistics()["elements"] == 11
