"""Sharded engine: routing, pruning, parity, rebalance crash matrix.

Four claims, four suites:

* **Unit** -- hash/range routing distributes and stays consistent with
  the partitioner; the gathered scan is globally tt-ordered and
  identical to a single store; a range-partitioned point timeslice
  routes exactly one shard (``explain()`` and the
  ``storage.shards.*`` counters agree); specialized strategy names are
  unchanged by sharding; ``REPRO_SHARDS`` reroutes the default engine;
  vacuum preserves the topology; the server and CLI wire ``--shards``.
* **Durable** -- a sharded directory reopens to the same contents (on
  the microsecond time-line; granularity reprs may differ) and a
  durable rebalance survives a close/reopen.
* **Differential** (Hypothesis) -- one random workload replayed through
  a single store, a hash-sharded topology, and a range-sharded one,
  with vacuum and rebalance/split interleaved, answers every probe
  identically.
* **Crash matrix** -- a rebalance interrupted at every manifest byte
  offset and every rename subset recovers to exactly the pre- or
  post-move assignment, keyed on whether the single commit record made
  it down whole.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, strategies as st

from repro.chronos.clock import LogicalClock, SimulatedWallClock
from repro.chronos.interval import Interval
from repro.chronos.timestamp import FOREVER, Timestamp
from repro.core.constraints import ConstraintViolation
from repro.observability import metrics
from repro.query import Planner, Rollback, Scan, ValidTimeslice
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation
from repro.storage.memory import MemoryEngine
from repro.storage.sharded import (
    MANIFEST_NAME,
    HashPartitioner,
    RangePartitioner,
    ShardedEngine,
    shard_file_name,
)
from repro.storage.vacuum import vacuum_relation
from tests.strategies import OBJECTS, insert_rows, json_safe_attributes

#: Valid times live in [0, 999] ticks; clocks start at 1000, so the
#: ``retroactive`` declaration used by the differential suite holds.
CLOCK_START = 1000
VT_TICKS = st.integers(min_value=0, max_value=999)

#: Four range shards over the [0, 999]-second valid-time span.
RANGE_BOUNDARIES = [250_000_000, 500_000_000, 750_000_000]


def make_relation(engine=None, specializations=()) -> TemporalRelation:
    schema = TemporalSchema(
        name="sharded",
        time_varying=("reading",),
        specializations=list(specializations),
    )
    return TemporalRelation(schema, clock=LogicalClock(start=CLOCK_START), engine=engine)


def seed_rows(relation: TemporalRelation, count: int = 48) -> None:
    """Deterministic workload: varied objects, vt spread over the full
    range span, a few logical deletions."""
    with relation.bulk() as batch:
        for i in range(count):
            batch.insert(f"o{i % 8}", Timestamp((37 * i) % 1000), {"reading": i})
    current = sorted(relation.current(), key=lambda e: e.element_surrogate)
    for victim in current[:: max(1, count // 6)]:
        relation.delete(victim.element_surrogate)


def canonical(elements) -> list:
    """Engine-independent element view on the microsecond time-line
    (granularity reprs differ across a durable round-trip)."""
    rows = []
    for element in elements:
        vt = element.vt
        vt_key = (
            (vt.start.microseconds, vt.end.microseconds)
            if isinstance(vt, Interval)
            else vt.microseconds
        )
        rows.append(
            (
                element.element_surrogate,
                element.object_surrogate,
                element.tt_start.microseconds,
                None if element.tt_stop is FOREVER else element.tt_stop.microseconds,
                vt_key,
                tuple(sorted(element.time_varying.items(), key=lambda kv: kv[0])),
            )
        )
    return sorted(rows)


def hash_engine(shards: int = 4) -> ShardedEngine:
    return ShardedEngine(shard_count=shards)


def range_engine() -> ShardedEngine:
    return ShardedEngine(
        shard_count=len(RANGE_BOUNDARIES) + 1,
        partitioner=RangePartitioner(list(RANGE_BOUNDARIES)),
    )


def assignment(engine: ShardedEngine) -> dict:
    """Per-shard element-surrogate membership (the rebalance unit)."""
    return {
        index: frozenset(element.element_surrogate for element in shard.scan())
        for index, shard in enumerate(engine.shards)
    }


class TestRoutingAndGather:
    def test_hash_routing_distributes_and_matches_partitioner(self):
        relation = make_relation(hash_engine())
        seed_rows(relation)
        engine = relation.engine
        populated = [index for index, members in assignment(engine).items() if members]
        assert len(populated) >= 2, "8 objects over 4 shards should spread"
        for index, shard in enumerate(engine.shards):
            for element in shard.scan():
                assert engine.partitioner.shard_of(element) == index
                assert engine.shard_of(element) == index

    def test_range_routing_respects_boundaries(self):
        relation = make_relation(range_engine())
        seed_rows(relation)
        engine = relation.engine
        for index, shard in enumerate(engine.shards):
            for element in shard.scan():
                span_lo = 0 if index == 0 else RANGE_BOUNDARIES[index - 1]
                assert element.vt.microseconds >= span_lo
                if index < len(RANGE_BOUNDARIES):
                    assert element.vt.microseconds < RANGE_BOUNDARIES[index]

    @pytest.mark.parametrize("factory", [hash_engine, range_engine])
    def test_gathered_reads_identical_to_single_store(self, factory):
        single = make_relation(MemoryEngine())
        sharded = make_relation(factory())
        seed_rows(single)
        seed_rows(sharded)
        assert canonical(sharded.all_elements()) == canonical(single.all_elements())
        assert canonical(sharded.current()) == canonical(single.current())
        # Gather order is the canonical tt order, element for element.
        assert [e.element_surrogate for e in sharded.engine.scan()] == [
            e.element_surrogate for e in single.engine.scan()
        ]
        tts = [e.tt_start.microseconds for e in sharded.engine.scan()]
        assert tts == sorted(tts) and len(set(tts)) == len(tts)

    def test_tt_uniqueness_enforced_across_shards(self):
        engine = hash_engine()
        relation = make_relation(engine)
        relation.insert("o1", Timestamp(5), {"reading": 1})
        element = relation.all_elements()[0]
        stale = type(element)(
            element_surrogate=element.element_surrogate + 1,
            object_surrogate="o2",
            vt=Timestamp(6),
            tt_start=element.tt_start,
            time_varying={"reading": 2},
        )
        with pytest.raises(ValueError):
            engine.append(stale)


class TestPruningAndObservability:
    def test_point_timeslice_routes_exactly_one_range_shard(self):
        single = make_relation(MemoryEngine())
        sharded = make_relation(range_engine())
        seed_rows(single)
        seed_rows(sharded)
        probe = Timestamp(100)  # owned by shard 0 of four
        report = sharded.explain(ValidTimeslice(Scan(sharded), probe))
        assert report.shards_routed == 1
        assert report.shards_pruned == 3
        assert "shards" in report.render()
        assert any("scatter-gather" in decision for decision in report.decisions)
        assert canonical(sharded.valid_at(probe)) == canonical(single.valid_at(probe))

    def test_every_non_intersecting_shard_is_pruned(self):
        """Each range shard owns one vt span: a probe inside span k must
        route shard k alone, for every k."""
        sharded = make_relation(range_engine())
        seed_rows(sharded)
        engine = sharded.engine
        for k in range(4):
            probe = Timestamp(250 * k + 100)
            before = engine.routing_totals()
            plan = Planner(sharded).plan(ValidTimeslice(Scan(sharded), probe))
            plan.execute()
            after = engine.routing_totals()
            assert plan.shard_stats is not None
            assert plan.shard_stats.routed == after[0] - before[0] == 1
            assert plan.shard_stats.pruned == after[1] - before[1] == 3

    def test_shard_metrics_counters(self):
        sharded = make_relation(range_engine())
        seed_rows(sharded)
        with metrics.enabled_scope(fresh=True) as registry:
            sharded.valid_at(Timestamp(100))
            counters = registry.snapshot()["counters"]
        assert counters["storage.shards.queries"] >= 1
        assert counters["storage.shards.routed"] >= 1
        assert counters["storage.shards.pruned"] >= 3

    def test_rollback_prunes_by_transaction_envelope(self):
        """A rollback earlier than every element in a shard skips it."""
        sharded = make_relation(hash_engine(2))
        seed_rows(sharded, count=12)
        engine = sharded.engine
        tt_floor = min(e.tt_start.microseconds for e in engine.scan())
        before = engine.routing_totals()
        results = list(engine.as_of(Timestamp(tt_floor - 1, "microsecond")))
        after = engine.routing_totals()
        assert results == []
        assert after[0] - before[0] == 0, "nothing alive that early: all pruned"


def build_events(specializations, offsets, engine=None):
    schema = TemporalSchema(name="r", specializations=list(specializations))
    clock = SimulatedWallClock(start=0)
    relation = TemporalRelation(schema, clock=clock, keep_backlog=False, engine=engine)
    for i, offset in enumerate(offsets):
        clock.advance_to(Timestamp(10 * i))
        relation.insert(f"o{i % 8}", Timestamp(10 * i + offset), {})
    return relation


class TestStrategyPreservation:
    """Sharding must not change which specialized strategy plans: the
    global orderings hold on every tt-subsequence, so each shard runs
    the same fast path the single store would."""

    CASES = [
        (["degenerate"], [0] * 30, "degenerate-rollback"),
        (["globally non-decreasing"], [3] * 30, "monotone-binary-search"),
        (["strongly bounded(5s, 5s)"], [(-1) ** i * 4 for i in range(30)], "bounded-tt-window"),
        ([], [(-1) ** i * 4 for i in range(30)], "engine-index"),
    ]

    @pytest.mark.parametrize("specializations,offsets,expected", CASES)
    def test_timeslice_strategy_unchanged(self, specializations, offsets, expected):
        single = build_events(specializations, offsets)
        sharded = build_events(specializations, offsets, engine=hash_engine())
        query_of = lambda rel: ValidTimeslice(Scan(rel), Timestamp(103))  # noqa: E731
        single_plan = Planner(single).plan(query_of(single))
        sharded_plan = Planner(sharded).plan(query_of(sharded))
        assert single_plan.strategy == expected
        assert sharded_plan.strategy == expected
        assert canonical(sharded_plan.execute()) == canonical(single_plan.execute())

    def test_rollback_strategy_unchanged(self):
        single = build_events([], [0] * 20)
        sharded = build_events([], [0] * 20, engine=hash_engine())
        for relation in (single, sharded):
            plan = Planner(relation).plan(Rollback(Scan(relation), Timestamp(95)))
            assert plan.strategy == "rollback-prefix"


class TestTopologyPlumbing:
    def test_repro_shards_env_reroutes_default_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        relation = make_relation()
        assert getattr(relation.engine, "is_sharded", False)
        assert relation.engine.shard_count == 3
        monkeypatch.delenv("REPRO_SHARDS")
        assert not getattr(make_relation().engine, "is_sharded", False)

    def test_vacuum_preserves_sharded_topology(self):
        relation = make_relation(range_engine())
        seed_rows(relation)
        closed = sum(1 for e in relation.all_elements() if e.tt_stop is not FOREVER)
        assert closed > 0
        survivors = canonical(relation.current())
        report = vacuum_relation(relation, Timestamp(10_000))
        assert report.purged == closed
        assert getattr(relation.engine, "is_sharded", False)
        assert relation.engine.shard_count == 4
        assert isinstance(relation.engine.partitioner, RangePartitioner)
        assert canonical(relation.current()) == survivors

    def test_rebalance_moves_hash_bucket(self):
        relation = make_relation(hash_engine())
        seed_rows(relation)
        engine = relation.engine
        before = canonical(relation.all_elements())
        bucket = engine.partitioner.bucket_of("o0")
        source = engine.partitioner.assignment[bucket]
        target = (source + 1) % engine.shard_count
        moved = engine.rebalance(bucket, target)
        assert moved > 0
        assert canonical(relation.all_elements()) == before
        for element in relation.all_elements():
            if element.object_surrogate == "o0":
                assert engine.shard_of(element) == target

    def test_split_moves_range_boundary(self):
        relation = make_relation(range_engine())
        seed_rows(relation)
        engine = relation.engine
        before = canonical(relation.all_elements())
        moved = engine.split(0, 150_000_000)
        assert moved > 0
        assert canonical(relation.all_elements()) == before
        for element in engine.shards[0].scan():
            assert element.vt.microseconds < 150_000_000

    def test_queries_replan_after_rebalance(self):
        relation = make_relation(range_engine())
        seed_rows(relation)
        probe = Timestamp(300)
        before = canonical(relation.valid_at(probe))
        relation.engine.split(0, 350_000_000)  # probe's span changes owner
        assert canonical(relation.valid_at(probe)) == before

    def test_server_builds_sharded_engines(self, tmp_path):
        from repro.server import ServerConfig, TemporalServer

        config = ServerConfig(shards=4, data_dir=str(tmp_path))
        server = TemporalServer(config)
        memory = server._build_engine("memory", "m")
        assert getattr(memory, "is_sharded", False) and memory.shard_count == 4
        durable = server._build_engine("logfile", "d")
        try:
            assert getattr(durable, "is_sharded", False)
            assert os.path.isdir(os.path.join(str(tmp_path), "d.shards"))
        finally:
            durable.close()

    def test_cli_serve_parses_shards_flag(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        assert parser.parse_args(["serve", "--shards", "4"]).shards == 4
        assert parser.parse_args(["serve"]).shards == 0


class TestDurableSharded:
    def test_reopen_round_trip(self, tmp_path):
        engine = ShardedEngine(data_dir=str(tmp_path), shard_count=3)
        relation = make_relation(engine)
        seed_rows(relation)
        expected = canonical(relation.all_elements())
        placement = assignment(engine)
        engine.close()
        reopened = ShardedEngine(data_dir=str(tmp_path))
        try:
            assert canonical(reopened.scan()) == expected
            assert assignment(reopened) == placement
            assert reopened.shard_count == 3
        finally:
            reopened.close()

    def test_durable_rebalance_survives_reopen(self, tmp_path):
        engine = ShardedEngine(data_dir=str(tmp_path), shard_count=3)
        relation = make_relation(engine)
        seed_rows(relation)
        expected = canonical(relation.all_elements())
        bucket = engine.partitioner.bucket_of("o3")
        target = (engine.partitioner.assignment[bucket] + 1) % 3
        assert engine.rebalance(bucket, target) > 0
        placement = assignment(engine)
        engine.close()
        reopened = ShardedEngine(data_dir=str(tmp_path))
        try:
            assert canonical(reopened.scan()) == expected
            assert assignment(reopened) == placement
            assert reopened.partitioner.assignment[bucket] == target
        finally:
            reopened.close()


# -- differential: one workload, three topologies, one answer --------------------

POISON_VT = Timestamp(10_000_000)


@st.composite
def sharded_scripts(draw):
    """Inserts, batches, rejected batches, deletions, vacuum, and
    physical rebalance/split moves, plus probe coordinates."""
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        kind = draw(
            st.sampled_from(
                ["insert", "batch", "reject", "delete", "rebalance", "vacuum"]
            )
        )
        if kind == "insert":
            ops.append(
                ("insert", draw(OBJECTS), draw(VT_TICKS), draw(json_safe_attributes()))
            )
        elif kind == "batch":
            ops.append(("batch", draw(insert_rows(min_size=1, max_size=6, vt_ticks=VT_TICKS))))
        elif kind == "reject":
            rows = draw(insert_rows(min_size=0, max_size=4, vt_ticks=VT_TICKS))
            rows.insert(
                draw(st.integers(min_value=0, max_value=len(rows))),
                ("poison", POISON_VT, {"reading": -1}),
            )
            ops.append(("reject", rows))
        elif kind == "delete":
            ops.append(("delete", draw(st.integers(min_value=0, max_value=31))))
        elif kind == "rebalance":
            ops.append(
                (
                    "rebalance",
                    draw(st.integers(min_value=0, max_value=63)),
                    draw(st.integers(min_value=0, max_value=3)),
                    draw(st.integers(min_value=0, max_value=2)),
                    draw(st.integers(min_value=-99, max_value=99)),
                )
            )
        else:
            ops.append(("vacuum",))
    probe_tts = draw(
        st.lists(
            st.integers(min_value=CLOCK_START - 2, max_value=CLOCK_START + 80),
            min_size=1,
            max_size=4,
        )
    )
    probe_vts = draw(st.lists(VT_TICKS, min_size=1, max_size=4))
    return ops, probe_tts, probe_vts


def replay(relation: TemporalRelation, ops) -> None:
    """Replay a script; physical ops translate per topology and are
    no-ops on the single store (they must never change any answer)."""
    for op in ops:
        if op[0] == "insert":
            _, object_surrogate, vt_tick, attributes = op
            relation.insert(object_surrogate, Timestamp(vt_tick), attributes)
        elif op[0] == "batch":
            relation.append_many(op[1])
        elif op[0] == "reject":
            with pytest.raises(ConstraintViolation):
                relation.append_many(op[1])
        elif op[0] == "delete":
            current = sorted(relation.current(), key=lambda e: e.element_surrogate)
            if current:
                relation.delete(current[op[1] % len(current)].element_surrogate)
        elif op[0] == "rebalance":
            _, bucket, target, boundary, delta = op
            engine = relation.engine
            if not getattr(engine, "is_sharded", False):
                continue
            if isinstance(engine.partitioner, HashPartitioner):
                engine.rebalance(
                    bucket % engine.partitioner.buckets, target % engine.shard_count
                )
            else:
                engine.split(boundary, RANGE_BOUNDARIES[boundary] + delta * 1_000_000)
        else:
            vacuum_relation(relation, Timestamp(1_000_000))


class TestShardedDifferential:
    """The sharded topologies are drop-ins: every probe agrees with the
    single store element for element, through vacuum and rebalances."""

    @given(script=sharded_scripts())
    def test_three_topologies_one_answer(self, script):
        ops, probe_tts, probe_vts = script
        single = make_relation(MemoryEngine(), specializations=["retroactive"])
        hashed = make_relation(hash_engine(), specializations=["retroactive"])
        ranged = make_relation(range_engine(), specializations=["retroactive"])
        for relation in (single, hashed, ranged):
            replay(relation, ops)
        for mirror in (hashed, ranged):
            assert canonical(mirror.all_elements()) == canonical(single.all_elements())
            assert canonical(mirror.current()) == canonical(single.current())
            for tt_tick in probe_tts:
                tt = Timestamp(tt_tick)
                assert canonical(mirror.as_of(tt)) == canonical(single.as_of(tt))
            for vt_tick in probe_vts:
                vt = Timestamp(vt_tick)
                assert canonical(mirror.valid_at(vt)) == canonical(single.valid_at(vt))
                window = Interval(vt, Timestamp(vt_tick + 40))
                assert canonical(mirror.valid_overlapping(window)) == canonical(
                    single.valid_overlapping(window)
                )
                as_of_tt = Timestamp(probe_tts[0])
                assert canonical(mirror.valid_at(vt, as_of_tt=as_of_tt)) == canonical(
                    single.valid_at(vt, as_of_tt=as_of_tt)
                )


# -- crash matrix: a rebalance interrupted everywhere ----------------------------


def read_dir(path: str) -> dict:
    return {
        name: open(os.path.join(path, name), "rb").read()
        for name in sorted(os.listdir(path))
    }


def write_dir(path: str, files: dict) -> None:
    os.makedirs(path)
    for name, data in files.items():
        with open(os.path.join(path, name), "wb") as handle:
            handle.write(data)


class TestRebalanceCrashMatrix:
    """Crash a durable rebalance at every byte of the manifest commit
    record and at every rename subset; recovery must land on exactly
    the pre-move or post-move per-shard assignment -- never between."""

    @pytest.fixture()
    def states(self, tmp_path, monkeypatch):
        live = os.path.join(str(tmp_path), "live")
        engine = ShardedEngine(data_dir=live, shard_count=3)
        relation = make_relation(engine)
        seed_rows(relation, count=30)
        engine.sync()
        pre_files = read_dir(live)
        pre_assignment = assignment(engine)
        logical = canonical(engine.scan())

        # Snapshot the directory at the first staged->live rename: the
        # commit record is durably down, no rename has happened yet.
        commit_files = {}
        real_replace = os.replace

        def capturing_replace(src, dst):
            if not commit_files:
                commit_files.update(read_dir(live))
            real_replace(src, dst)

        monkeypatch.setattr(os, "replace", capturing_replace)
        bucket = engine.partitioner.bucket_of("o0")
        target = (engine.partitioner.assignment[bucket] + 1) % 3
        assert engine.rebalance(bucket, target) > 0
        monkeypatch.setattr(os, "replace", real_replace)

        engine.sync()
        post_assignment = assignment(engine)
        engine.close()
        assert commit_files, "the rebalance never renamed anything"
        assert post_assignment != pre_assignment
        staged_names = sorted(
            name[: -len(".staged")]
            for name in commit_files
            if name.endswith(".staged")
        )
        assert staged_names, "no staged shard logs captured at the commit point"
        return {
            "pre_files": pre_files,
            "pre_assignment": pre_assignment,
            "post_assignment": post_assignment,
            "logical": logical,
            "commit_files": commit_files,
            "staged_names": staged_names,
        }

    def check_recovery(self, crash_dir: str, states: dict, committed: bool) -> None:
        recovered = ShardedEngine(data_dir=crash_dir)
        try:
            expected = (
                states["post_assignment"] if committed else states["pre_assignment"]
            )
            assert assignment(recovered) == expected
            assert canonical(recovered.scan()) == states["logical"]
            for entry in os.listdir(crash_dir):
                assert not entry.endswith(".staged"), "recovery must clear the stage"
        finally:
            recovered.close()

    def test_crash_at_every_manifest_byte(self, tmp_path, states):
        """Old logs + full stage + the commit record cut at byte k: only
        the whole record commits the move."""
        pre_manifest = states["pre_files"][MANIFEST_NAME]
        delta = states["commit_files"][MANIFEST_NAME][len(pre_manifest):]
        assert delta, "the rebalance appended nothing to the manifest"
        for k in range(len(delta) + 1):
            crash_dir = os.path.join(str(tmp_path), f"crash-{k}")
            files = dict(states["pre_files"])
            for name, data in states["commit_files"].items():
                if name.endswith(".staged"):
                    files[name] = data
            files[MANIFEST_NAME] = pre_manifest + delta[:k]
            write_dir(crash_dir, files)
            self.check_recovery(crash_dir, states, committed=(k == len(delta)))

    def test_crash_at_every_rename_subset(self, tmp_path, states):
        """Committed record with any prefix of the renames applied:
        recovery finishes the rest idempotently."""
        staged_names = states["staged_names"]
        for done in range(len(staged_names) + 1):
            crash_dir = os.path.join(str(tmp_path), f"renamed-{done}")
            files = dict(states["commit_files"])
            for name in staged_names[:done]:
                files[name] = files.pop(name + ".staged")
            write_dir(crash_dir, files)
            self.check_recovery(crash_dir, states, committed=True)

    def test_uncommitted_stage_alone_is_discarded(self, tmp_path, states):
        """Stage written, manifest untouched (crash before the commit
        append even started): pure pre-move recovery."""
        crash_dir = os.path.join(str(tmp_path), "staged-only")
        files = dict(states["pre_files"])
        for name, data in states["commit_files"].items():
            if name.endswith(".staged"):
                files[name] = data
        write_dir(crash_dir, files)
        self.check_recovery(crash_dir, states, committed=False)
