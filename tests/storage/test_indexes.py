"""Unit and property tests for indexes and the interval tree."""

import pytest
from hypothesis import given, strategies as st

from repro.chronos.duration import CalendricDuration, Duration
from repro.chronos.interval import Interval
from repro.chronos.timestamp import FOREVER, NEGATIVE_INFINITY, Timestamp
from repro.relation.element import Element
from repro.storage.indexes import BoundedWindow, TransactionTimeIndex, ValidTimeEventIndex
from repro.storage.interval_tree import IntervalTree
from repro.storage.memory import MemoryEngine


def event_element(surrogate: int, tt: int, vt: int) -> Element:
    return Element(
        element_surrogate=surrogate,
        object_surrogate="obj",
        tt_start=Timestamp(tt),
        vt=Timestamp(vt),
    )


def interval_element(surrogate: int, tt: int, vt_start: int, vt_end: int) -> Element:
    return Element(
        element_surrogate=surrogate,
        object_surrogate="obj",
        tt_start=Timestamp(tt),
        vt=Interval(Timestamp(vt_start), Timestamp(vt_end)),
    )


class TestTransactionTimeIndex:
    def test_prefix_binary_search(self):
        index = TransactionTimeIndex()
        for surrogate, tt in ((1, 10), (2, 20), (3, 30)):
            index.append(event_element(surrogate, tt, 0))
        assert [e.element_surrogate for e in index.prefix_through(Timestamp(20))] == [1, 2]
        assert [e.element_surrogate for e in index.prefix_through(Timestamp(9))] == []
        assert len(list(index.prefix_through(FOREVER))) == 3
        assert list(index.prefix_through(NEGATIVE_INFINITY)) == []

    def test_window(self):
        index = TransactionTimeIndex()
        for surrogate, tt in enumerate(range(0, 100, 10), start=1):
            index.append(event_element(surrogate, tt, 0))
        window = [e.tt_start.ticks for e in index.window(Timestamp(25), Timestamp(55))]
        assert window == [30, 40, 50]

    def test_rejects_non_increasing(self):
        index = TransactionTimeIndex()
        index.append(event_element(1, 10, 0))
        with pytest.raises(ValueError, match="strictly increasing"):
            index.append(event_element(2, 10, 0))

    def test_replace(self):
        index = TransactionTimeIndex()
        index.append(event_element(1, 10, 0))
        closed = index.element_at(0).closed(Timestamp(99))
        index.replace(0, closed)
        assert not index.element_at(0).is_current


class TestValidTimeEventIndex:
    def test_in_order_appends_counted(self):
        index = ValidTimeEventIndex()
        for surrogate, vt in ((1, 5), (2, 5), (3, 9)):
            index.add(event_element(surrogate, surrogate, vt))
        assert index.appended_in_order == 3
        assert index.inserted_out_of_order == 0

    def test_out_of_order_inserts_counted(self):
        index = ValidTimeEventIndex()
        index.add(event_element(1, 1, 10))
        index.add(event_element(2, 2, 5))
        assert index.inserted_out_of_order == 1

    def test_at_and_between(self):
        index = ValidTimeEventIndex()
        for surrogate, vt in ((1, 5), (2, 7), (3, 5), (4, 12)):
            index.add(event_element(surrogate, surrogate, vt))
        assert sorted(e.element_surrogate for e in index.at(Timestamp(5))) == [1, 3]
        assert [e.element_surrogate for e in index.between(Timestamp(5), Timestamp(12))] in (
            [1, 3, 2],
            [3, 1, 2],
        )

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=30))
    def test_between_matches_filter(self, valid_times):
        index = ValidTimeEventIndex()
        for position, vt in enumerate(valid_times, start=1):
            index.add(event_element(position, position, vt))
        low, high = Timestamp(-20), Timestamp(20)
        expected = sorted(i + 1 for i, vt in enumerate(valid_times) if -20 <= vt < 20)
        assert sorted(e.element_surrogate for e in index.between(low, high)) == expected


class TestBoundedWindow:
    def test_two_sided(self):
        window = BoundedWindow(Duration(5), Duration(10))
        low, high = window.tt_window_for(Timestamp(100))
        assert low == Timestamp(90) and high == Timestamp(105)
        assert window.is_two_sided

    def test_one_sided(self):
        retroactive_only = BoundedWindow(Duration(5), None)
        low, high = retroactive_only.tt_window_for(Timestamp(100))
        assert low is None and high == Timestamp(105)

    def test_calendric_widened_conservatively(self):
        window = BoundedWindow(CalendricDuration(months=1), Duration(0))
        low, high = window.tt_window_for(Timestamp(0, "day"))
        assert high == Timestamp(31, "day")

    def test_scan_restricts_candidates(self):
        index = TransactionTimeIndex()
        for surrogate, tt in enumerate(range(0, 1000, 10), start=1):
            index.append(event_element(surrogate, tt, tt - 3))
        window = BoundedWindow(Duration(5), Duration(0))
        candidates = list(window.scan(index, Timestamp(497)))
        # Only elements with 497 <= tt <= 502 qualify.
        assert [e.tt_start.ticks for e in candidates] == [500]

    @given(st.integers(0, 980))
    def test_scan_never_misses_matches(self, probe):
        """Soundness: every element valid at v is inside the window."""
        index = TransactionTimeIndex()
        elements = []
        for surrogate, tt in enumerate(range(0, 1000, 7), start=1):
            element = event_element(surrogate, tt, tt - (surrogate % 6))
            index.append(element)
            elements.append(element)
        window = BoundedWindow(Duration(5), Duration(0))
        vt = Timestamp(probe)
        expected = {e.element_surrogate for e in elements if e.vt == vt}
        got = {e.element_surrogate for e in window.scan(index, vt) if e.vt == vt}
        assert got == expected


class TestIntervalTree:
    def iv(self, start, end):
        return Interval(Timestamp(start), Timestamp(end))

    def test_stab(self):
        tree = IntervalTree()
        tree.add(self.iv(0, 10), "a")
        tree.add(self.iv(5, 15), "b")
        tree.add(self.iv(20, 30), "c")
        assert sorted(tree.stab(Timestamp(7))) == ["a", "b"]
        assert list(tree.stab(Timestamp(10))) == ["b"]  # half-open
        assert sorted(tree.stab(Timestamp(25))) == ["c"]
        assert list(tree.stab(Timestamp(16))) == []

    def test_overlapping(self):
        tree = IntervalTree()
        tree.add(self.iv(0, 10), "a")
        tree.add(self.iv(20, 30), "b")
        assert sorted(tree.overlapping(self.iv(5, 25))) == ["a", "b"]
        assert list(tree.overlapping(self.iv(10, 20))) == []

    def test_unbounded_intervals(self):
        tree = IntervalTree()
        tree.add(Interval(Timestamp(5), FOREVER), "open")
        assert list(tree.stab(Timestamp(10**9))) == ["open"]
        assert list(tree.stab(Timestamp(4))) == []

    def test_incremental_rebuild(self):
        tree = IntervalTree()
        tree.add(self.iv(0, 10), 1)
        assert list(tree.stab(Timestamp(5))) == [1]
        tree.add(self.iv(3, 7), 2)
        assert sorted(tree.stab(Timestamp(5))) == [1, 2]

    @given(
        st.lists(
            st.tuples(st.integers(-50, 50), st.integers(1, 40)),
            min_size=1,
            max_size=40,
        ),
        st.integers(-60, 100),
    )
    def test_stab_matches_filter(self, spans, probe):
        tree = IntervalTree()
        intervals = []
        for identifier, (start, length) in enumerate(spans):
            interval = self.iv(start, start + length)
            tree.add(interval, identifier)
            intervals.append(interval)
        point = Timestamp(probe)
        expected = sorted(
            i for i, interval in enumerate(intervals) if interval.contains_point(point)
        )
        assert sorted(tree.stab(point)) == expected

    @given(
        st.lists(
            st.tuples(st.integers(-50, 50), st.integers(1, 40)),
            min_size=1,
            max_size=40,
        ),
        st.integers(-60, 100),
        st.integers(1, 50),
    )
    def test_overlap_matches_filter(self, spans, window_start, window_length):
        tree = IntervalTree()
        intervals = []
        for identifier, (start, length) in enumerate(spans):
            interval = self.iv(start, start + length)
            tree.add(interval, identifier)
            intervals.append(interval)
        window = self.iv(window_start, window_start + window_length)
        expected = sorted(
            i for i, interval in enumerate(intervals) if interval.overlaps(window)
        )
        assert sorted(tree.overlapping(window)) == expected


class TestIntervalTreeIncrementalInsert:
    """Appends after a build insert into the existing tree in place --
    the regression is a rebuild (or a fresh tree) per mutation."""

    def iv(self, start, end):
        return Interval(Timestamp(start), Timestamp(end))

    def test_appends_after_build_do_not_rebuild(self):
        tree = IntervalTree()
        for i in range(16):
            tree.add(self.iv(i, i + 3), i)
        assert sorted(tree.stab(Timestamp(5))) == [3, 4, 5]
        assert tree.rebuilds == 1
        for i in range(16, 200):
            tree.add(self.iv(i, i + 3), i)
            # Queries between appends stay correct without re-sorting
            # the whole item set.
            assert sorted(tree.stab(Timestamp(i))) == [i - 2, i - 1, i]
        assert tree.rebuilds == 1

    def test_engine_preserves_index_identity_across_appends(self):
        engine = MemoryEngine()
        for i in range(10):
            engine.append(interval_element(i, 10 * i, 10 * i, 10 * i + 25))
        assert len(list(engine.valid_at(Timestamp(30)))) > 0  # force build
        tree = engine.interval_index
        assert tree is not None
        before = tree.rebuilds
        for i in range(10, 40):
            engine.append(interval_element(i, 10 * i, 10 * i, 10 * i + 25))
            engine.valid_at(Timestamp(10 * i + 1))
        assert engine.interval_index is tree
        assert tree.rebuilds == before

    @given(
        st.lists(
            st.tuples(st.integers(-50, 50), st.integers(1, 40)),
            min_size=2,
            max_size=40,
        ),
        st.integers(-60, 100),
        st.integers(1, 50),
    )
    def test_incremental_matches_batch_built(self, spans, probe, window_length):
        incremental = IntervalTree()
        for identifier, (start, length) in enumerate(spans):
            incremental.add(self.iv(start, start + length), identifier)
            # Query every step: the first stab builds, the rest insert
            # into the built tree.
            incremental.stab(Timestamp(probe))
        batch = IntervalTree()
        for identifier, (start, length) in enumerate(spans):
            batch.add(self.iv(start, start + length), identifier)
        point = Timestamp(probe)
        assert sorted(incremental.stab(point)) == sorted(batch.stab(point))
        window = self.iv(probe, probe + window_length)
        assert sorted(incremental.overlapping(window)) == sorted(
            batch.overlapping(window)
        )
        assert incremental.rebuilds == 1
