"""The segmented store: sealing, zone maps, the current-state view,
parallel segment scans -- and the differential property that none of it
ever changes an answer.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.interval import Interval
from repro.chronos.timestamp import FOREVER, Timestamp
from repro.query import NaiveExecutor, Rollback, Scan, ValidTimeslice, operators
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation
from repro.storage.memory import MemoryEngine
from repro.storage.segments import (
    DEFAULT_SEGMENT_SIZE,
    SegmentedStore,
    configured_segment_size,
    parallel_enabled,
    parallel_map_segments,
)
from repro.storage.sqlite_backend import SQLiteEngine
from repro.storage.vacuum import vacuum_relation
from tests.strategies import OBJECTS, SMALL_TICKS, insert_rows, json_safe_attributes


@contextmanager
def parallel_env(value):
    """Temporarily pin REPRO_PARALLEL ('0'/'1' or None to unset)."""
    old = os.environ.get("REPRO_PARALLEL")
    if value is None:
        os.environ.pop("REPRO_PARALLEL", None)
    else:
        os.environ["REPRO_PARALLEL"] = value
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_PARALLEL", None)
        else:
            os.environ["REPRO_PARALLEL"] = old


def build_relation(segment_size=None, count=0, vt_index=True):
    schema = TemporalSchema(name="r", time_varying=("reading",))
    clock = SimulatedWallClock(start=0)
    engine = MemoryEngine(maintain_vt_index=vt_index, segment_size=segment_size)
    relation = TemporalRelation(schema, clock=clock, keep_backlog=False, engine=engine)
    for i in range(count):
        clock.advance_to(Timestamp(10 * i))
        relation.insert("o", Timestamp(10 * i), {"reading": i})
    return relation, clock


class TestSealing:
    def test_head_seals_at_segment_size(self):
        relation, _clock = build_relation(segment_size=8, count=20)
        store = relation.engine.transaction_index.store
        assert store.sealed_count == 2
        assert store.head_start == 16
        segments = store.segments()
        assert [len(s) for s in segments] == [8, 8, 4]
        assert [s.sealed for s in segments] == [True, True, False]

    def test_extend_seals_full_blocks(self):
        relation, _clock = build_relation(segment_size=8)
        relation.append_many(
            [("o", Timestamp(i), {"reading": i}) for i in range(17)]
        )
        store = relation.engine.transaction_index.store
        assert store.sealed_count == 2
        assert len(store) == 17

    def test_zone_map_covers_segment(self):
        relation, _clock = build_relation(segment_size=8, count=16)
        store = relation.engine.transaction_index.store
        zone = store.zone_of(0)
        assert zone.tt_lo == Timestamp(0).microseconds
        assert zone.tt_hi == Timestamp(70).microseconds
        assert zone.vt_lo == Timestamp(0).microseconds
        assert zone.vt_hi == Timestamp(70).microseconds
        assert zone.live == 8
        assert zone.vt_sorted  # valid times arrived in order

    def test_vt_sorted_flag_detects_disorder(self):
        schema = TemporalSchema(name="r")
        clock = SimulatedWallClock(start=0)
        engine = MemoryEngine(segment_size=4)
        relation = TemporalRelation(schema, clock=clock, keep_backlog=False, engine=engine)
        for i, vt in enumerate([5, 3, 8, 1]):  # out of valid-time order
            clock.advance_to(Timestamp(10 * i))
            relation.insert("o", Timestamp(vt), {})
        store = engine.transaction_index.store
        assert store.sealed_count == 1
        assert not store.zone_of(0).vt_sorted

    def test_ordering_violation_message_unchanged(self):
        store = SegmentedStore(segment_size=4)
        from repro.relation.element import Element

        first = Element(
            element_surrogate=1,
            object_surrogate="o",
            tt_start=Timestamp(10),
            vt=Timestamp(10),
        )
        stale = Element(
            element_surrogate=2,
            object_surrogate="o",
            tt_start=Timestamp(5),
            vt=Timestamp(5),
        )
        store.append(first)
        with pytest.raises(ValueError, match="strictly increasing"):
            store.append(stale)
        with pytest.raises(ValueError, match="strictly increasing"):
            store.extend([stale])

    def test_env_segment_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEGMENT_SIZE", "64")
        assert configured_segment_size() == 64
        assert SegmentedStore().segment_size == 64
        monkeypatch.setenv("REPRO_SEGMENT_SIZE", "bogus")
        assert configured_segment_size() == DEFAULT_SEGMENT_SIZE
        monkeypatch.delenv("REPRO_SEGMENT_SIZE")
        assert configured_segment_size() == DEFAULT_SEGMENT_SIZE


class TestZoneMaintenance:
    def test_close_updates_sealed_zone(self):
        relation, clock = build_relation(segment_size=8, count=16)
        store = relation.engine.transaction_index.store
        victim = relation.all_elements()[3]
        clock.advance_to(Timestamp(1_000))
        relation.delete(victim.element_surrogate)
        zone = store.zone_of(0)
        assert zone.live == 7
        assert zone.max_closed_tt_stop > Timestamp(1_000).microseconds - 1
        assert store.live_count() == 15

    def test_alive_at_prunes_dead_segment(self):
        relation, clock = build_relation(segment_size=8, count=16)
        store = relation.engine.transaction_index.store
        clock.advance_to(Timestamp(1_000))
        for element in relation.all_elements()[:8]:
            relation.delete(element.element_surrogate)
        zone = store.zone_of(0)
        assert zone.live == 0
        probe = Timestamp(5_000).microseconds
        assert not zone.alive_at(probe)  # everything closed before probe
        assert zone.alive_at(Timestamp(500).microseconds)  # still open then


class TestCurrentStateView:
    def test_view_tracks_appends_and_closes(self):
        relation, clock = build_relation(segment_size=8, count=12)
        store = relation.engine.transaction_index.store
        victim = relation.all_elements()[0]
        clock.advance_to(Timestamp(900))
        relation.delete(victim.element_surrogate)
        expected = [e for e in relation.engine.scan() if e.is_current]
        assert list(store.iter_current()) == expected
        assert store.live_count() == len(expected)

    def test_invalidate_then_lazy_rebuild(self):
        relation, _clock = build_relation(segment_size=8, count=12)
        store = relation.engine.transaction_index.store
        expected = list(store.iter_current())
        store.invalidate_view()
        assert not store.view_valid
        assert list(store.iter_current()) == expected  # rebuilt on demand
        assert store.view_valid

    def test_vacuum_invalidates_then_answers_match(self):
        relation, clock = build_relation(segment_size=8, count=12)
        clock.advance_to(Timestamp(500))
        for element in relation.all_elements()[:4]:
            relation.delete(element.element_surrogate)
        before = [e.element_surrogate for e in relation.current()]
        clock.advance_to(Timestamp(2_000))
        vacuum_relation(relation, Timestamp(1_000))
        store = relation.engine.transaction_index.store
        assert not store.view_valid  # vacuum dropped the view
        assert [e.element_surrogate for e in relation.current()] == before
        assert store.view_valid  # and reading it rebuilt it

    def test_current_is_o_live_not_o_history(self):
        relation, clock = build_relation(segment_size=8, count=40)
        clock.advance_to(Timestamp(10_000))
        survivors = relation.all_elements()[:4]
        for element in relation.all_elements()[4:]:
            relation.delete(element.element_surrogate)
        assert relation.live_count() == 4
        assert sorted(e.element_surrogate for e in relation.current()) == sorted(
            e.element_surrogate for e in survivors
        )


class TestParallelMap:
    def test_preserves_order_and_uses_pool(self):
        seen_threads = set()

        def work(n):
            seen_threads.add(threading.current_thread().name)
            return n * n

        with parallel_env("1"):
            assert parallel_enabled()
            result = parallel_map_segments(work, list(range(40)), threshold=4)
        assert result == [n * n for n in range(40)]
        assert any("repro-segment" in name for name in seen_threads)

    def test_disabled_runs_sequential(self):
        seen_threads = set()

        def work(n):
            seen_threads.add(threading.current_thread().name)
            return n + 1

        with parallel_env("0"):
            assert not parallel_enabled()
            result = parallel_map_segments(work, list(range(40)), threshold=4)
        assert result == list(range(1, 41))
        assert all("repro-segment" not in name for name in seen_threads)

    def test_below_threshold_stays_sequential(self):
        seen_threads = set()

        def work(n):
            seen_threads.add(threading.current_thread().name)
            return n

        with parallel_env("1"):
            parallel_map_segments(work, [1, 2, 3], threshold=8)
        assert all("repro-segment" not in name for name in seen_threads)


class TestSQLiteParallelReads:
    def build(self, tmp_path, threshold=1):
        schema = TemporalSchema(name="r", time_varying=("reading",))
        clock = SimulatedWallClock(start=0)
        engine = SQLiteEngine(
            str(tmp_path / "r.db"), parallel_row_threshold=threshold
        )
        relation = TemporalRelation(schema, clock=clock, keep_backlog=False, engine=engine)
        relation.append_many(
            [("o", Timestamp(i), {"reading": i}) for i in range(60)]
        )
        clock.advance_to(Timestamp(500))
        for element in relation.all_elements()[:10]:
            relation.delete(element.element_surrogate)
        return relation

    def test_parallel_scan_matches_sequential(self, tmp_path):
        relation = self.build(tmp_path)
        with parallel_env("0"):
            sequential = [repr(e) for e in relation.engine.scan()]
        with parallel_env("1"):
            parallel = [repr(e) for e in relation.engine.scan()]
        assert parallel == sequential
        assert len(parallel) == 60

    def test_parallel_as_of_matches_sequential(self, tmp_path):
        relation = self.build(tmp_path)
        probe = Timestamp(30)
        with parallel_env("0"):
            sequential = [repr(e) for e in relation.engine.as_of(probe)]
        with parallel_env("1"):
            parallel = [repr(e) for e in relation.engine.as_of(probe)]
        assert parallel == sequential

    def test_memory_database_never_parallelizes(self):
        engine = SQLiteEngine(parallel_row_threshold=1)
        schema = TemporalSchema(name="r", time_varying=("reading",))
        clock = SimulatedWallClock(start=0)
        relation = TemporalRelation(schema, clock=clock, keep_backlog=False, engine=engine)
        relation.append_many([("o", Timestamp(i), {"reading": i}) for i in range(20)])
        with parallel_env("1"):
            assert engine._partition_tt() is None
            assert len(list(engine.scan())) == 20


# -- the differential property -----------------------------------------------------


@st.composite
def segment_workloads(draw):
    """Randomized interleavings of appends, batches, closes, and vacuum."""
    ops = []
    for _ in range(draw(st.integers(min_value=2, max_value=7))):
        kind = draw(
            st.sampled_from(["insert", "batch", "batch", "delete", "vacuum"])
        )
        if kind == "insert":
            ops.append(
                (
                    "insert",
                    draw(OBJECTS),
                    draw(SMALL_TICKS),
                    draw(json_safe_attributes()),
                )
            )
        elif kind == "batch":
            ops.append(("batch", draw(insert_rows(min_size=1, max_size=20))))
        elif kind == "delete":
            ops.append(("delete", draw(st.integers(min_value=0, max_value=40))))
        else:
            ops.append(("vacuum", draw(st.integers(min_value=0, max_value=60))))
    probes = tuple(draw(SMALL_TICKS) for _ in range(3))
    return ops, probes


def replay(ops, segment_size):
    schema = TemporalSchema(name="r", time_varying=("reading",))
    clock = SimulatedWallClock(start=0)
    engine = MemoryEngine(segment_size=segment_size)
    relation = TemporalRelation(schema, clock=clock, keep_backlog=False, engine=engine)
    tick = 0
    for op in ops:
        tick += 100
        clock.advance_to(Timestamp(tick))
        if op[0] == "insert":
            _kind, obj, vt, attributes = op
            relation.insert(obj, Timestamp(vt), attributes)
        elif op[0] == "batch":
            relation.append_many(op[1])
        elif op[0] == "delete":
            stored = relation.current()
            if stored:
                relation.delete(stored[op[1] % len(stored)].element_surrogate)
        else:  # vacuum at a horizon inside the history so far
            vacuum_relation(relation, Timestamp(op[1] % (tick + 1)))
    return relation


def signature(elements):
    return [
        (e.element_surrogate, e.tt_start.microseconds, repr(e.tt_stop), repr(e.vt))
        for e in elements
    ]


def all_answers(relation, probes):
    """Every engine read path, in engine-reported order."""
    a, b, c = (Timestamp(p) for p in probes)
    lo, hi = sorted((probes[0], probes[1] + 1))
    if lo == hi:  # probes can collide; Interval requires start < end
        hi += 1
    return {
        "scan": signature(relation.engine.scan()),
        "current": signature(relation.engine.current()),
        "as_of": signature(relation.engine.as_of(a)),
        "as_of_forever": signature(relation.engine.as_of(FOREVER)),
        "valid_at": signature(relation.engine.valid_at(b)),
        "overlap": signature(
            relation.engine.valid_overlapping(
                Interval(Timestamp(lo), Timestamp(hi))
            )
        ),
        "rollback_op": signature(operators.rollback_prefix(relation, c)[0]),
        "bitemporal_op": signature(
            operators.bitemporal_prefix(relation, b, c)[0]
        ),
        "pruned_timeslice_op": signature(
            operators.timeslice_segment_pruned(relation, b)[0]
        ),
    }


@settings(deadline=None)
@given(segment_workloads())
def test_segmented_engines_match_flat_scan(workload):
    """Byte-identical answers across segment sizes, parallelism on and off.

    The reference is a store whose segment size exceeds any workload
    (never seals -- the seed's flat scan), run sequentially; tiny
    segment sizes force many sealed segments so zone-map pruning and
    (with >8 work units) the thread pool genuinely engage.
    """
    ops, probes = workload
    with parallel_env("0"):
        reference = all_answers(replay(ops, 100_000), probes)
        # The planner's naive executor agrees on the shared shapes.
        flat = replay(ops, 100_000)
        naive = NaiveExecutor()
        assert sorted(signature(naive.run(Rollback(Scan(flat), Timestamp(probes[2]))))) == sorted(
            reference["rollback_op"]
        )
        assert sorted(
            signature(naive.run(ValidTimeslice(Scan(flat), Timestamp(probes[1]))))
        ) == sorted(reference["pruned_timeslice_op"])
    for segment_size in (2, 5):
        for parallel in ("0", "1"):
            with parallel_env(parallel):
                assert all_answers(replay(ops, segment_size), probes) == reference, (
                    f"divergence at segment_size={segment_size} parallel={parallel}"
                )
