"""Seam-bug regressions: caches that must notice deletes.

Two historically fragile seams, pinned here:

* **Cold-segment delete patches** (satellite 1).  A logical delete
  whose victim lives in a compressed cold segment rewrites that
  segment out-of-line.  Everything derived downstream -- the store's
  materialized current view, zone-map liveness, the relation's
  epoch-keyed ``statistics()`` cache, the planner's per-epoch metadata
  cache, and any registered standing view -- must observe the patch.

* **Sharded envelope memos** (satellite 2).  The router caches one
  envelope per shard, keyed by that shard's mutation epoch.  A delete
  changes ``live`` and ``max_closed_tt_stop`` without changing the
  element count, so shards whose epoch is derived from ``len()``
  (SQLite shards before the fix) served stale envelopes: emptied
  shards kept answering ``live > 0`` and current-state probes visited
  them forever.
"""

from __future__ import annotations

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chronos.clock import LogicalClock
from repro.chronos.timestamp import FOREVER, Timestamp
from repro.query.planner import Planner
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation
from repro.storage.memory import MemoryEngine
from repro.storage.sharded import ShardedEngine
from repro.storage.sqlite_backend import SQLiteEngine


def make_relation(engine) -> TemporalRelation:
    schema = TemporalSchema(name="seams", time_varying=("reading",))
    return TemporalRelation(schema, clock=LogicalClock(start=1_000), engine=engine)


class TestColdPatchInvalidation:
    def _grown_cold(self, tier_dir, count=12):
        """A relation whose history is sealed and migrated cold."""
        engine = MemoryEngine(segment_size=4, tier_dir=tier_dir)
        relation = make_relation(engine)
        with relation.bulk() as batch:
            for i in range(count):
                batch.insert(f"o{i}", Timestamp(i), {"reading": i})
        migrated = engine.transaction_index.store.compact()
        assert migrated.get("cold", 0) >= 2, migrated
        return relation, engine

    def test_cold_delete_refreshes_current_view_and_statistics(self):
        with tempfile.TemporaryDirectory() as tier_dir:
            relation, engine = self._grown_cold(tier_dir)
            planner = Planner(relation)
            # Named to dodge the REPRO_VIEWS=1 auto "current" view.
            view = relation.views.register_current(name="cold-check")
            # Warm every cache with the pre-delete state.
            assert relation.statistics()["live_elements"] == 12
            assert planner.relation_statistics()["live_elements"] == 12
            assert len(view.snapshot()) == 12

            victim = min(
                relation.current(), key=lambda e: e.tt_start.microseconds
            )  # guaranteed to sit in the oldest (cold) segment
            relation.delete(victim.element_surrogate)

            survivors = {e.element_surrogate for e in engine.current()}
            assert victim.element_surrogate not in survivors
            assert len(survivors) == 11
            # The epoch-keyed caches saw the patch.
            assert relation.statistics()["live_elements"] == 11
            assert planner.relation_statistics()["live_elements"] == 11
            # And the standing view agrees with recomputation.
            assert view.snapshot() == view.recompute()
            assert len(view.snapshot()) == 11
            # The closed record itself is patched, not ghosted.
            closed = engine.get(victim.element_surrogate)
            assert closed.tt_stop is not FOREVER

    def test_cold_patch_visible_without_any_relation_read_between(self):
        """Statistics computed *only after* the delete (no warm cache to
        invalidate) must still see the patched liveness."""
        with tempfile.TemporaryDirectory() as tier_dir:
            relation, engine = self._grown_cold(tier_dir)
            for victim in list(relation.current())[:5]:
                relation.delete(victim.element_surrogate)
            assert relation.statistics()["live_elements"] == 7
            # All 12 elements sit in sealed segments (12 = 3 full
            # segments of 4), so zone-map liveness must sum exactly.
            zones_live = sum(
                zone.live for zone in engine.transaction_index.store._zones
            )
            assert zones_live == 7


class TestShardedEnvelopeInvalidation:
    def _sqlite_sharded(self, data_dir, shard_count=2) -> ShardedEngine:
        return ShardedEngine(data_dir=data_dir, shard_count=shard_count)

    def test_sqlite_shard_epoch_advances_on_delete(self):
        with tempfile.TemporaryDirectory() as data_dir:
            engine = SQLiteEngine(f"{data_dir}/shard.db")
            relation = make_relation(engine)
            stored = relation.insert("alpha", Timestamp(1))
            before = engine.mutation_count()
            relation.delete(stored.element_surrogate)
            assert engine.mutation_count() == before + 1
            assert len(engine) == 1  # history retained: len() alone is blind

    def test_envelopes_refresh_after_deletes_empty_a_shard(self):
        with tempfile.TemporaryDirectory() as data_dir:
            engine = self._sqlite_sharded(data_dir)
            relation = make_relation(engine)
            with relation.bulk() as batch:
                for i in range(10):
                    batch.insert(f"o{i}", Timestamp(i), {"reading": i})
            assert sum(env.live for env in engine.envelopes()) == 10

            for element in list(relation.current()):
                relation.delete(element.element_surrogate)

            envelopes = engine.envelopes()
            assert [env.live for env in envelopes] == [0] * len(envelopes)
            # Liveness routing prunes every shard once nothing is live.
            assert engine.route_shards(lambda env: env.live > 0) == []
            assert relation.current() == []

    def test_max_closed_tt_stop_tracks_latest_delete(self):
        with tempfile.TemporaryDirectory() as data_dir:
            engine = self._sqlite_sharded(data_dir)
            relation = make_relation(engine)
            with relation.bulk() as batch:
                for i in range(6):
                    batch.insert(f"o{i}", Timestamp(i))
            closed = relation.delete(relation.current()[0].element_surrogate)
            stamp = closed.tt_stop.microseconds
            assert max(
                env.max_closed_tt_stop for env in engine.envelopes()
            ) == stamp

    @settings(max_examples=20, deadline=None)
    @given(
        script=st.lists(
            st.one_of(
                st.tuples(st.just("insert"), st.integers(0, 7), st.integers(0, 60)),
                st.tuples(st.just("delete"), st.integers(0, 63)),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_envelopes_always_match_fresh_computation(self, script):
        """Hypothesis regression: after any insert/delete interleaving,
        every memoized envelope equals one computed from scratch."""
        engine = ShardedEngine(shard_count=3)
        relation = make_relation(engine)
        for op in script:
            if op[0] == "insert":
                relation.insert(f"o{op[1]}", Timestamp(op[2]))
            else:
                live = relation.current()
                if live:
                    relation.delete(live[op[1] % len(live)].element_surrogate)
        memoized = engine.envelopes()
        for shard, envelope in zip(engine.shards, memoized):
            elements = list(shard.scan())
            assert envelope.count == len(elements)
            assert envelope.live == sum(1 for e in elements if e.is_current)
            closed = [
                e.tt_stop.microseconds for e in elements if e.tt_stop is not FOREVER
            ]
            if closed:
                assert envelope.max_closed_tt_stop == max(closed)
