"""Tests for the single-stamp (degenerate) storage engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.interval import Interval
from repro.chronos.timestamp import FOREVER, Timestamp
from repro.relation.element import Element
from repro.relation.errors import ElementNotFound
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation
from repro.storage.memory import MemoryEngine
from repro.storage.single_stamp import SingleStampEngine


def degenerate_element(surrogate: int, tt: int, **varying) -> Element:
    return Element(
        element_surrogate=surrogate,
        object_surrogate="o",
        tt_start=Timestamp(tt),
        vt=Timestamp(tt),
        time_varying=varying,
        user_times={"noted": Timestamp(tt - 1)},
    )


class TestInvariants:
    def test_rejects_non_degenerate(self):
        engine = SingleStampEngine()
        bad = Element(1, "o", Timestamp(10), Timestamp(9))
        with pytest.raises(ValueError, match="vt = tt"):
            engine.append(bad)

    def test_rejects_intervals(self):
        engine = SingleStampEngine()
        bad = Element(1, "o", Timestamp(10), Interval(Timestamp(10), Timestamp(20)))
        with pytest.raises(ValueError, match="event relations only"):
            engine.append(bad)

    def test_rejects_duplicates_and_disorder(self):
        engine = SingleStampEngine()
        engine.append(degenerate_element(1, 10))
        with pytest.raises(ValueError, match="already stored"):
            engine.append(degenerate_element(1, 20))
        with pytest.raises(ValueError, match="strictly increasing"):
            engine.append(degenerate_element(2, 10))


class TestRoundTrip:
    def test_materialization_preserves_everything(self):
        engine = SingleStampEngine()
        engine.append(degenerate_element(1, 10, v=5))
        element = engine.get(1)
        assert element.vt == element.tt_start == Timestamp(10)
        assert element.time_varying == {"v": 5}
        assert element.user_times == {"noted": Timestamp(9)}
        assert element.tt_stop is FOREVER

    def test_close_and_reopen_semantics(self):
        engine = SingleStampEngine()
        engine.append(degenerate_element(1, 10))
        closed = engine.close_element(1, Timestamp(20))
        assert closed.tt_stop == Timestamp(20)
        with pytest.raises(ValueError, match="already deleted"):
            engine.close_element(1, Timestamp(30))
        with pytest.raises(ElementNotFound):
            engine.get(99)

    def test_timeslice_is_point_lookup(self):
        engine = SingleStampEngine()
        for i in range(100):
            engine.append(degenerate_element(i + 1, 10 * i))
        hits = list(engine.valid_at(Timestamp(500)))
        assert [e.element_surrogate for e in hits] == [51]
        assert list(engine.valid_at(Timestamp(505))) == []

    def test_bitemporal_slice(self):
        engine = SingleStampEngine()
        engine.append(degenerate_element(1, 10))
        engine.close_element(1, Timestamp(20))
        assert list(engine.valid_at(Timestamp(10))) == []
        revived = list(engine.valid_at(Timestamp(10), as_of_tt=Timestamp(15)))
        assert [e.element_surrogate for e in revived] == [1]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=40))
    def test_equivalent_to_memory_engine(self, script):
        single = SingleStampEngine()
        memory = MemoryEngine()
        tt = 0
        surrogate = 0
        live = []
        for is_delete in script:
            tt += 1
            if is_delete and live:
                victim = live.pop(0)
                single.close_element(victim, Timestamp(tt))
                memory.close_element(victim, Timestamp(tt))
            else:
                surrogate += 1
                element = degenerate_element(surrogate, tt)
                single.append(element)
                memory.append(element)
                live.append(surrogate)
        for probe in range(0, tt + 2):
            stamp = Timestamp(probe)
            assert sorted(e.element_surrogate for e in single.as_of(stamp)) == sorted(
                e.element_surrogate for e in memory.as_of(stamp)
            )
            assert sorted(e.element_surrogate for e in single.valid_at(stamp)) == sorted(
                e.element_surrogate for e in memory.valid_at(stamp)
            )


class TestWithRelation:
    def test_drop_in_for_degenerate_relation(self):
        schema = TemporalSchema(name="feed", specializations=["degenerate"])
        clock = SimulatedWallClock(start=0)
        relation = TemporalRelation(
            schema, clock=clock, engine=SingleStampEngine(), keep_backlog=False
        )
        for i in range(20):
            clock.advance_to(Timestamp(5 * i))
            relation.insert("s", Timestamp(5 * i), {})
        assert len(relation.valid_at(Timestamp(50))) == 1
        assert len(relation.as_of(Timestamp(50))) == 11

    def test_stamp_bytes_saved_reported(self):
        engine = SingleStampEngine()
        for i in range(10):
            engine.append(degenerate_element(i + 1, i))
        assert engine.stamp_bytes_saved() > 0
