"""Shared fixtures, hypothesis profiles, and strategy re-exports.

The strategies themselves live in :mod:`tests.strategies`; the names
are re-exported here because the older suites import them from
``tests.conftest``.

Two hypothesis profiles:

* ``dev`` (default) -- a small example budget, so the tier-1 suite
  stays fast for local loops;
* ``ci`` -- at least 200 examples per property, no deadline, used by
  the CI workflow via ``HYPOTHESIS_PROFILE=ci``;
* ``faults`` -- a reduced budget for the durability crash-matrix
  properties (each example replays a whole workload at every byte
  offset, so examples are expensive); used by the CI fault-injection
  leg via ``HYPOTHESIS_PROFILE=faults``.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

from tests.strategies import (  # noqa: F401  (re-exported for the suites)
    SMALL_TICKS,
    TICKS,
    event_elements,
    event_extensions,
    insert_rows,
    interval_extensions,
    intervals,
    json_safe_attributes,
    specialization_declarations,
    timestamps,
)

settings.register_profile(
    "ci",
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", max_examples=25, deadline=None)
settings.register_profile(
    "faults",
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
