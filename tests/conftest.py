"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.core.taxonomy.base import Stamped

# Keep coordinates small enough that all arithmetic stays fast but large
# enough to exercise every ordering of endpoints.
TICKS = st.integers(min_value=-1_000, max_value=1_000)
SMALL_TICKS = st.integers(min_value=0, max_value=60)


@st.composite
def timestamps(draw, ticks=TICKS):
    return Timestamp(draw(ticks))


@st.composite
def intervals(draw, ticks=TICKS):
    start = draw(ticks)
    length = draw(st.integers(min_value=1, max_value=100))
    return Interval(Timestamp(start), Timestamp(start + length))


@st.composite
def event_elements(draw, max_offset: int = 50):
    """A single event-stamped element with bounded |vt - tt|."""
    tt = draw(st.integers(min_value=0, max_value=10_000))
    offset = draw(st.integers(min_value=-max_offset, max_value=max_offset))
    return Stamped(tt_start=Timestamp(tt), vt=Timestamp(tt + offset))


@st.composite
def event_extensions(draw, min_size: int = 1, max_size: int = 12, max_offset: int = 50):
    """An extension with unique, increasing transaction times."""
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    tts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=10_000),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
    )
    elements = []
    for tt in tts:
        offset = draw(st.integers(min_value=-max_offset, max_value=max_offset))
        elements.append(Stamped(tt_start=Timestamp(tt), vt=Timestamp(tt + offset)))
    return elements


@st.composite
def interval_extensions(draw, min_size: int = 1, max_size: int = 10):
    """An interval-stamped extension with unique transaction times."""
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    tts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=10_000),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
    )
    elements = []
    for tt in tts:
        start = draw(st.integers(min_value=-100, max_value=10_100))
        length = draw(st.integers(min_value=1, max_value=60))
        elements.append(
            Stamped(
                tt_start=Timestamp(tt),
                vt=Interval(Timestamp(start), Timestamp(start + length)),
            )
        )
    return elements
