"""Fault injection for durability tests.

:class:`FaultyFile` wraps a binary file object and injects a write-path
fault at the *Nth* I/O operation (write and fsync calls both count,
starting at 0).  Fault kinds:

* ``"enospc"`` -- the write fails up front, nothing reaches the file
  (a full disk detected before any byte lands);
* ``"torn"`` -- the write persists only a prefix of the payload, then
  fails (a crash / full disk mid-write: the torn-tail case recovery
  must truncate);
* ``"short"`` -- like ``torn`` but surfaced as ``EIO``: a short write
  the caller is told about;
* ``"fsync"`` -- writes succeed, the matching fsync fails (data may be
  in the page cache but durability was never acknowledged).

``LogFileEngine`` calls the handle's own ``fsync()`` when it has one,
so the wrapper intercepts durability points without patching ``os``.
A fault fires once; subsequent operations pass through, which lets
tests assert that the engine repairs its tail and keeps working.
"""

from __future__ import annotations

import errno
import os
from typing import IO, Optional

FAULT_KINDS = ("enospc", "torn", "short", "fsync")


class FaultyFile:
    """A binary file wrapper that fails the Nth write/fsync operation."""

    def __init__(
        self,
        handle: IO[bytes],
        *,
        fail_at: int = 0,
        kind: str = "enospc",
        partial_bytes: Optional[int] = None,
    ) -> None:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r} (expected one of {FAULT_KINDS})")
        self._handle = handle
        self._fail_at = fail_at
        self._kind = kind
        self._partial_bytes = partial_bytes
        self.operations = 0  # writes + fsyncs seen so far
        self.faults_fired = 0

    def _due(self) -> bool:
        due = self.operations == self._fail_at and self.faults_fired == 0
        self.operations += 1
        return due

    # -- faulted operations -------------------------------------------------------

    def write(self, payload: bytes) -> int:
        if self._due() and self._kind in ("enospc", "torn", "short"):
            self.faults_fired += 1
            if self._kind == "enospc":
                raise OSError(errno.ENOSPC, "injected: no space left on device")
            partial = (
                self._partial_bytes
                if self._partial_bytes is not None
                else len(payload) // 2
            )
            self._handle.write(payload[:partial])
            self._handle.flush()  # the torn prefix really reaches the file
            if self._kind == "torn":
                raise OSError(errno.ENOSPC, "injected: torn write (disk filled mid-record)")
            raise OSError(errno.EIO, f"injected: short write ({partial}/{len(payload)} bytes)")
        return self._handle.write(payload)

    def fsync(self) -> None:
        if self._due() and self._kind == "fsync":
            self.faults_fired += 1
            raise OSError(errno.EIO, "injected: fsync failure")
        os.fsync(self._handle.fileno())

    # -- transparent delegation ---------------------------------------------------

    def flush(self) -> None:
        self._handle.flush()

    def fileno(self) -> int:
        return self._handle.fileno()

    def close(self) -> None:
        self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def __getattr__(self, name: str):
        return getattr(self._handle, name)


def arm(engine, **kwargs) -> FaultyFile:
    """Wrap a ``LogFileEngine``'s live handle with a fault plan."""
    wrapper = FaultyFile(engine._handle, **kwargs)
    engine._handle = wrapper
    return wrapper


def disarm(engine) -> bool:
    """Remove a fault plan, restoring the bare handle.

    Returns whether a wrapper was actually removed.  A fault that
    already *fired* on the write path usually disarms itself -- the
    engine's tail repair reopens the file with a fresh handle -- so
    this is for un-fired plans (and fsync-kind faults, which never
    replace the handle).
    """
    handle = engine._handle
    if isinstance(handle, FaultyFile):
        engine._handle = handle._handle
        return True
    return False
