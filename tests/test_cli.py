"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestRegions:
    def test_prints_table_and_count(self, capsys):
        assert main(["regions"]) == 0
        output = capsys.readouterr().out
        assert "degenerate" in output and "point region" in output
        assert "6 one-line + 5 two-line + general = 12 shapes" in output


class TestLattice:
    @pytest.mark.parametrize("figure", ["fig2", "fig3", "fig4", "fig5"])
    def test_ascii(self, capsys, figure):
        assert main(["lattice", figure]) == 0
        assert "general" in capsys.readouterr().out

    def test_dot(self, capsys):
        assert main(["lattice", "fig2", "--dot"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("digraph")
        assert '"retroactive" -> "delayed retroactive";' in output

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["lattice", "fig9"])


class TestClassify:
    def test_csv_file(self, tmp_path, capsys):
        path = tmp_path / "sample.csv"
        path.write_text("tt,vt\n100,95\n200,180\n300,299\n")
        assert main(["classify", str(path)]) == 0
        output = capsys.readouterr().out
        assert "delayed strongly retroactively bounded" in output

    def test_comments_and_headers_skipped(self, tmp_path, capsys):
        path = tmp_path / "sample.csv"
        path.write_text("# comment\ntt,vt,object\n10,10,a\n20,20,a\n")
        assert main(["classify", str(path)]) == 0
        assert "degenerate" in capsys.readouterr().out

    def test_empty_file_errors(self, tmp_path, capsys):
        path = tmp_path / "empty.csv"
        path.write_text("tt,vt\n")
        assert main(["classify", str(path)]) == 1
        assert "no (tt, vt) rows" in capsys.readouterr().err

    def test_stdin(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("100,95\n200,195\n"))
        assert main(["classify", "-"]) == 0
        assert "observed" in capsys.readouterr().out


class TestWorkload:
    def test_generation(self, capsys):
        assert main(["workload", "archeology"]) == 0
        output = capsys.readouterr().out
        assert "strata" in output
        assert "globally non-increasing" in output

    def test_with_tql(self, capsys):
        assert main(
            ["workload", "ledger", "--tql", "SELECT amount FROM ledger WHERE amount > 4900"]
        ) == 0
        output = capsys.readouterr().out
        assert "result(s)" in output

    def test_long_results_truncated(self, capsys):
        assert main(["workload", "general", "--tql", "SELECT payload FROM general_traffic"]) == 0
        output = capsys.readouterr().out
        assert "more" in output


class TestExplain:
    def test_sequenced_key_timeslice(self, capsys):
        """The acceptance query: a timeslice on the sequenced-key
        monitoring workload prints strategy, pruning decisions, and at
        least three timed spans."""
        assert main(
            ["explain", "monitoring", "SELECT * FROM plant_temperatures VALID AT 100s"]
        ) == 0
        output = capsys.readouterr().out
        assert "strategy  : bounded-tt-window" in output
        assert "decisions :" in output
        assert "pruned" in output
        span_lines = [line for line in output.splitlines() if " ms" in line and "- " in line]
        assert len(span_lines) >= 3

    def test_metrics_snapshot(self, capsys):
        assert main(
            [
                "explain",
                "monitoring",
                "SELECT * FROM plant_temperatures VALID AT 100s",
                "--metrics",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "metrics   :" in output
        assert '"counters"' in output

    def test_no_execute(self, capsys):
        assert main(
            [
                "explain",
                "monitoring",
                "SELECT * FROM plant_temperatures VALID AT 100s",
                "--no-execute",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "strategy  :" in output
        assert "operator:" not in output

    def test_metrics_stay_disabled_after_run(self):
        from repro.observability import metrics

        was = metrics.enabled()
        main(["explain", "monitoring", "SELECT * FROM plant_temperatures VALID AT 100s"])
        assert metrics.enabled() == was


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "rejected" in output
        assert "inferred" in output


class TestRecover:
    def build_log(self, tmp_path):
        from repro.chronos.timestamp import Timestamp
        from repro.relation.element import Element
        from repro.storage.logfile import LogFileEngine

        path = str(tmp_path / "crash.wal")
        engine = LogFileEngine(path)
        engine.append(
            Element(
                element_surrogate=1,
                object_surrogate="obj",
                tt_start=Timestamp(10),
                vt=Timestamp(5),
            )
        )
        engine.close()
        return path

    def tear(self, path, bytes_off=3):
        with open(path, "r+b") as handle:
            handle.seek(0, 2)
            handle.truncate(handle.tell() - bytes_off)

    def test_clean_log_exits_zero(self, tmp_path, capsys):
        path = self.build_log(tmp_path)
        assert main(["recover", path]) == 0
        assert "damage    : none" in capsys.readouterr().out

    def test_recovers_torn_tail(self, tmp_path, capsys):
        path = self.build_log(tmp_path)
        self.tear(path)
        assert main(["recover", path]) == 0
        out = capsys.readouterr().out
        assert "truncated" in out
        import os

        assert os.path.exists(path + ".corrupt")
        # A second pass sees a clean log.
        assert main(["recover", path]) == 0
        assert "damage    : none" in capsys.readouterr().out

    def test_dry_run_reports_damage_without_touching(self, tmp_path, capsys):
        import os

        path = self.build_log(tmp_path)
        self.tear(path)
        size = os.path.getsize(path)
        assert main(["recover", path, "--dry-run"]) == 1
        assert os.path.getsize(path) == size
        assert not os.path.exists(path + ".corrupt")

    def test_unreadable_path_exits_two(self, tmp_path, capsys):
        assert main(["recover", str(tmp_path / "absent.wal")]) == 2
        assert "cannot read" in capsys.readouterr().err
