"""Reusable Hypothesis strategies for the property and differential suites.

Historically these lived in ``tests/conftest.py``; they are now a
standalone module so property suites can import them explicitly, while
``conftest`` keeps re-exporting the original names.

Three groups:

* stamp-level strategies (``timestamps``, ``intervals``) and the
  taxonomy-level ``Stamped`` strategies the constraint suites use;
* relation-level strategies (``insert_rows``, ``json_safe_attributes``)
  producing the ``(object_surrogate, vt, attributes)`` rows that
  :meth:`TemporalRelation.append_many` ingests -- attribute values are
  JSON-safe so the same workload replays through the SQLite and
  log-file engines;
* ``specialization_declarations`` -- declared-specialization lists in
  the textual form :func:`repro.core.taxonomy.registry.parse` accepts,
  paired with an offset strategy that generates *compliant* ``vt - tt``
  offsets for them.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.core.taxonomy.base import Stamped

# Keep coordinates small enough that all arithmetic stays fast but large
# enough to exercise every ordering of endpoints.
TICKS = st.integers(min_value=-1_000, max_value=1_000)
SMALL_TICKS = st.integers(min_value=0, max_value=60)

#: A small pool of object surrogates, so workloads revisit objects.
OBJECTS = st.sampled_from(["alpha", "beta", "gamma", "delta"])

#: Attribute values that survive a JSON round-trip unchanged (the
#: SQLite and log-file engines serialize attributes as JSON).
JSON_SAFE_VALUES = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.text(max_size=8),
    st.booleans(),
    st.none(),
)


@st.composite
def timestamps(draw, ticks=TICKS):
    return Timestamp(draw(ticks))


@st.composite
def intervals(draw, ticks=TICKS):
    start = draw(ticks)
    length = draw(st.integers(min_value=1, max_value=100))
    return Interval(Timestamp(start), Timestamp(start + length))


@st.composite
def event_elements(draw, max_offset: int = 50):
    """A single event-stamped element with bounded |vt - tt|."""
    tt = draw(st.integers(min_value=0, max_value=10_000))
    offset = draw(st.integers(min_value=-max_offset, max_value=max_offset))
    return Stamped(tt_start=Timestamp(tt), vt=Timestamp(tt + offset))


@st.composite
def event_extensions(draw, min_size: int = 1, max_size: int = 12, max_offset: int = 50):
    """An extension with unique, increasing transaction times."""
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    tts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=10_000),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
    )
    elements = []
    for tt in tts:
        offset = draw(st.integers(min_value=-max_offset, max_value=max_offset))
        elements.append(Stamped(tt_start=Timestamp(tt), vt=Timestamp(tt + offset)))
    return elements


@st.composite
def interval_extensions(draw, min_size: int = 1, max_size: int = 10):
    """An interval-stamped extension with unique transaction times."""
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    tts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=10_000),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
    )
    elements = []
    for tt in tts:
        start = draw(st.integers(min_value=-100, max_value=10_100))
        length = draw(st.integers(min_value=1, max_value=60))
        elements.append(
            Stamped(
                tt_start=Timestamp(tt),
                vt=Interval(Timestamp(start), Timestamp(start + length)),
            )
        )
    return elements


# -- relation-level strategies ---------------------------------------------------


@st.composite
def json_safe_attributes(draw, varying=("reading",)):
    """Attribute dicts for the declared time-varying attributes."""
    return {name: draw(JSON_SAFE_VALUES) for name in varying}


@st.composite
def insert_rows(draw, min_size=0, max_size=20, vt_ticks=SMALL_TICKS, varying=("reading",)):
    """Rows for ``append_many``: ``(object, vt, attributes)`` triples."""
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    return [
        (
            draw(OBJECTS),
            Timestamp(draw(vt_ticks)),
            draw(json_safe_attributes(varying=varying)),
        )
        for _ in range(count)
    ]


# -- declared specializations with compliant workloads ----------------------------

#: Per-offset-range declarations: ``vt = tt + offset`` with offset drawn
#: from the given inclusive range is always compliant.
_OFFSET_RANGES = {
    (): (-50, 50),
    ("retroactive",): (-50, 0),
    ("predictive",): (0, 50),
    ("strongly bounded(5s, 5s)",): (-5, 5),
    ("retroactively bounded(30s)",): (-30, 50),
}

#: Every event declaration tuple :func:`compliant_vt_ticks` can build
#: data for.  The planner property suite iterates these.
EVENT_DECLARATIONS = tuple(
    sorted(
        list(_OFFSET_RANGES)
        + [
            ("degenerate",),
            ("globally non-decreasing",),
            ("globally non-increasing",),
            ("globally sequential",),
        ]
    )
)


@st.composite
def compliant_vt_ticks(draw, names, count):
    """Valid-time ticks compliant with *names* for dense stamping.

    Compliance is guaranteed when element i is stored at ``tt = i`` --
    the stamp sequence a single ``append_many`` batch (or unit-spaced
    single inserts) produces.
    """
    if names == ("degenerate",):
        return list(range(count))
    if names == ("globally sequential",):
        # max(tt_i, vt_i) = i + b_i <= i + 1 = min(tt_{i+1}, vt_{i+1}).
        return [i + draw(st.integers(min_value=0, max_value=1)) for i in range(count)]
    if names == ("globally non-decreasing",):
        value = draw(st.integers(min_value=-20, max_value=20))
        ticks = []
        for _ in range(count):
            ticks.append(value)
            value += draw(st.integers(min_value=0, max_value=3))
        return ticks
    if names == ("globally non-increasing",):
        value = draw(st.integers(min_value=-20, max_value=20))
        ticks = []
        for _ in range(count):
            ticks.append(value)
            value -= draw(st.integers(min_value=0, max_value=3))
        return ticks
    low, high = _OFFSET_RANGES[names]
    return [
        i + draw(st.integers(min_value=low, max_value=high)) for i in range(count)
    ]


@st.composite
def specialization_declarations(draw):
    """One of the event declaration tuples the planner exploits."""
    return draw(st.sampled_from(EVENT_DECLARATIONS))


# -- standing-view differential harness ------------------------------------------

#: View kinds the workload runner can register mid-stream.  ``watch``
#: is library-only (arbitrary predicate); the other three mirror the
#: server's registration surface.
STANDING_VIEW_KINDS = ("current", "timeslice", "overlap", "watch")


@st.composite
def standing_view_ops(draw, min_ops=6, max_ops=24):
    """A randomized mutation/maintenance script for standing views.

    Each op is a tagged tuple :func:`run_standing_view_workload`
    interprets against a live relation: inserts (single and batch),
    deletes and modifies of randomly chosen live elements, view
    registrations *mid-workload*, and the three maintenance events that
    historically eat caches -- vacuum (engine replacement), segment
    compaction (tier migration), and shard rebalancing.  Delete/modify
    carry an index that the runner resolves modulo the live set, so
    scripts shrink well and never reference dangling surrogates.
    """
    op = st.one_of(
        st.tuples(st.just("insert"), OBJECTS, SMALL_TICKS, st.integers(1, 12)),
        st.tuples(
            st.just("batch"),
            st.lists(
                st.tuples(OBJECTS, SMALL_TICKS, st.integers(1, 12)),
                min_size=1,
                max_size=5,
            ),
        ),
        st.tuples(st.just("delete"), st.integers(0, 63)),
        st.tuples(st.just("modify"), st.integers(0, 63), SMALL_TICKS, st.integers(1, 12)),
        st.tuples(st.just("register"), st.sampled_from(STANDING_VIEW_KINDS), SMALL_TICKS),
        st.tuples(st.just("vacuum"), st.integers(0, 80)),
        st.tuples(st.just("compact")),
        st.tuples(st.just("rebalance"), st.integers(0, 1_000)),
    )
    return draw(st.lists(op, min_size=min_ops, max_size=max_ops))


def _workload_vt(schema, tick, length):
    """A valid time matching *schema*'s kind from workload coordinates."""
    if schema.is_event:
        return Timestamp(tick)
    return Interval(Timestamp(tick), Timestamp(tick + length))


def run_standing_view_workload(relation, ops, check_after_every_op=True):
    """Drive *ops* against *relation*; differentially check every view.

    Views register mid-workload (per the script); after every op, each
    registered view's delta-maintained snapshot must equal a
    from-scratch recomputation over the engine -- byte-identical
    elements in canonical transaction-time order.  Vacuum, compaction,
    and rebalance interleave with the mutation stream exactly as a
    production maintenance schedule would.  Returns the registered
    views so callers can make end-state assertions.
    """
    from repro.storage.sharded import HashPartitioner, ShardedEngine
    from repro.storage.vacuum import vacuum_relation

    views = []
    serial = 0

    def check():
        for view in views:
            maintained = view.snapshot()
            recomputed = view.recompute()
            assert maintained == recomputed, (
                f"standing view {view.name!r} diverged from recomputation:\n"
                f"  maintained: {maintained!r}\n"
                f"  recomputed: {recomputed!r}"
            )

    for op in ops:
        kind = op[0]
        if kind == "insert":
            relation.insert(op[1], _workload_vt(relation.schema, op[2], op[3]))
        elif kind == "batch":
            relation.append_many(
                [
                    (obj, _workload_vt(relation.schema, tick, length))
                    for obj, tick, length in op[1]
                ]
            )
        elif kind == "delete":
            live = relation.current()
            if live:
                relation.delete(live[op[1] % len(live)].element_surrogate)
        elif kind == "modify":
            live = relation.current()
            if live:
                relation.modify(
                    live[op[1] % len(live)].element_surrogate,
                    vt=_workload_vt(relation.schema, op[2], op[3]),
                )
        elif kind == "register":
            serial += 1
            name = f"standing-{serial}"
            registry = relation.views
            if op[1] == "current":
                views.append(registry.register_current(name))
            elif op[1] == "timeslice":
                views.append(registry.register_timeslice(name, Timestamp(op[2])))
            elif op[1] == "overlap":
                views.append(
                    registry.register_overlap(
                        name, Interval(Timestamp(op[2]), Timestamp(op[2] + 10))
                    )
                )
            else:
                views.append(
                    registry.register_watch(
                        name, lambda element: element.object_surrogate == "alpha"
                    )
                )
        elif kind == "vacuum":
            vacuum_relation(relation, Timestamp(op[1]))
        elif kind == "compact":
            engine = relation.engine
            shards = (
                engine.shards if isinstance(engine, ShardedEngine) else [engine]
            )
            for shard in shards:
                index = getattr(shard, "transaction_index", None)
                if index is not None:
                    index.store.compact()
        elif kind == "rebalance":
            engine = relation.engine
            if (
                isinstance(engine, ShardedEngine)
                and isinstance(engine.partitioner, HashPartitioner)
            ):
                bucket = op[1] % engine.partitioner.buckets
                target = op[1] % len(engine.shards)
                engine.rebalance(bucket, target)
        else:  # pragma: no cover - strategy and runner must stay in sync
            raise AssertionError(f"unknown workload op {op!r}")
        if check_after_every_op:
            check()
    check()
    return views
