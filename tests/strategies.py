"""Reusable Hypothesis strategies for the property and differential suites.

Historically these lived in ``tests/conftest.py``; they are now a
standalone module so property suites can import them explicitly, while
``conftest`` keeps re-exporting the original names.

Three groups:

* stamp-level strategies (``timestamps``, ``intervals``) and the
  taxonomy-level ``Stamped`` strategies the constraint suites use;
* relation-level strategies (``insert_rows``, ``json_safe_attributes``)
  producing the ``(object_surrogate, vt, attributes)`` rows that
  :meth:`TemporalRelation.append_many` ingests -- attribute values are
  JSON-safe so the same workload replays through the SQLite and
  log-file engines;
* ``specialization_declarations`` -- declared-specialization lists in
  the textual form :func:`repro.core.taxonomy.registry.parse` accepts,
  paired with an offset strategy that generates *compliant* ``vt - tt``
  offsets for them.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.core.taxonomy.base import Stamped

# Keep coordinates small enough that all arithmetic stays fast but large
# enough to exercise every ordering of endpoints.
TICKS = st.integers(min_value=-1_000, max_value=1_000)
SMALL_TICKS = st.integers(min_value=0, max_value=60)

#: A small pool of object surrogates, so workloads revisit objects.
OBJECTS = st.sampled_from(["alpha", "beta", "gamma", "delta"])

#: Attribute values that survive a JSON round-trip unchanged (the
#: SQLite and log-file engines serialize attributes as JSON).
JSON_SAFE_VALUES = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.text(max_size=8),
    st.booleans(),
    st.none(),
)


@st.composite
def timestamps(draw, ticks=TICKS):
    return Timestamp(draw(ticks))


@st.composite
def intervals(draw, ticks=TICKS):
    start = draw(ticks)
    length = draw(st.integers(min_value=1, max_value=100))
    return Interval(Timestamp(start), Timestamp(start + length))


@st.composite
def event_elements(draw, max_offset: int = 50):
    """A single event-stamped element with bounded |vt - tt|."""
    tt = draw(st.integers(min_value=0, max_value=10_000))
    offset = draw(st.integers(min_value=-max_offset, max_value=max_offset))
    return Stamped(tt_start=Timestamp(tt), vt=Timestamp(tt + offset))


@st.composite
def event_extensions(draw, min_size: int = 1, max_size: int = 12, max_offset: int = 50):
    """An extension with unique, increasing transaction times."""
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    tts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=10_000),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
    )
    elements = []
    for tt in tts:
        offset = draw(st.integers(min_value=-max_offset, max_value=max_offset))
        elements.append(Stamped(tt_start=Timestamp(tt), vt=Timestamp(tt + offset)))
    return elements


@st.composite
def interval_extensions(draw, min_size: int = 1, max_size: int = 10):
    """An interval-stamped extension with unique transaction times."""
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    tts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=10_000),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
    )
    elements = []
    for tt in tts:
        start = draw(st.integers(min_value=-100, max_value=10_100))
        length = draw(st.integers(min_value=1, max_value=60))
        elements.append(
            Stamped(
                tt_start=Timestamp(tt),
                vt=Interval(Timestamp(start), Timestamp(start + length)),
            )
        )
    return elements


# -- relation-level strategies ---------------------------------------------------


@st.composite
def json_safe_attributes(draw, varying=("reading",)):
    """Attribute dicts for the declared time-varying attributes."""
    return {name: draw(JSON_SAFE_VALUES) for name in varying}


@st.composite
def insert_rows(draw, min_size=0, max_size=20, vt_ticks=SMALL_TICKS, varying=("reading",)):
    """Rows for ``append_many``: ``(object, vt, attributes)`` triples."""
    count = draw(st.integers(min_value=min_size, max_value=max_size))
    return [
        (
            draw(OBJECTS),
            Timestamp(draw(vt_ticks)),
            draw(json_safe_attributes(varying=varying)),
        )
        for _ in range(count)
    ]


# -- declared specializations with compliant workloads ----------------------------

#: Per-offset-range declarations: ``vt = tt + offset`` with offset drawn
#: from the given inclusive range is always compliant.
_OFFSET_RANGES = {
    (): (-50, 50),
    ("retroactive",): (-50, 0),
    ("predictive",): (0, 50),
    ("strongly bounded(5s, 5s)",): (-5, 5),
    ("retroactively bounded(30s)",): (-30, 50),
}

#: Every event declaration tuple :func:`compliant_vt_ticks` can build
#: data for.  The planner property suite iterates these.
EVENT_DECLARATIONS = tuple(
    sorted(
        list(_OFFSET_RANGES)
        + [
            ("degenerate",),
            ("globally non-decreasing",),
            ("globally non-increasing",),
            ("globally sequential",),
        ]
    )
)


@st.composite
def compliant_vt_ticks(draw, names, count):
    """Valid-time ticks compliant with *names* for dense stamping.

    Compliance is guaranteed when element i is stored at ``tt = i`` --
    the stamp sequence a single ``append_many`` batch (or unit-spaced
    single inserts) produces.
    """
    if names == ("degenerate",):
        return list(range(count))
    if names == ("globally sequential",):
        # max(tt_i, vt_i) = i + b_i <= i + 1 = min(tt_{i+1}, vt_{i+1}).
        return [i + draw(st.integers(min_value=0, max_value=1)) for i in range(count)]
    if names == ("globally non-decreasing",):
        value = draw(st.integers(min_value=-20, max_value=20))
        ticks = []
        for _ in range(count):
            ticks.append(value)
            value += draw(st.integers(min_value=0, max_value=3))
        return ticks
    if names == ("globally non-increasing",):
        value = draw(st.integers(min_value=-20, max_value=20))
        ticks = []
        for _ in range(count):
            ticks.append(value)
            value -= draw(st.integers(min_value=0, max_value=3))
        return ticks
    low, high = _OFFSET_RANGES[names]
    return [
        i + draw(st.integers(min_value=low, max_value=high)) for i in range(count)
    ]


@st.composite
def specialization_declarations(draw):
    """One of the event declaration tuples the planner exploits."""
    return draw(st.sampled_from(EVENT_DECLARATIONS))
