"""Unit and property tests for periods (finite unions of intervals)."""

from hypothesis import given, strategies as st

from repro.chronos.interval import Interval
from repro.chronos.period import Period
from repro.chronos.timestamp import FOREVER, Timestamp


def iv(start: int, end: int) -> Interval:
    return Interval(Timestamp(start), Timestamp(end))


@st.composite
def periods(draw):
    pieces = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=-100, max_value=100),
                st.integers(min_value=1, max_value=30),
            ),
            max_size=6,
        )
    )
    return Period(iv(start, start + length) for start, length in pieces)


class TestNormalization:
    def test_empty(self):
        assert Period.empty().is_empty
        assert len(Period.empty()) == 0

    def test_merges_overlapping(self):
        period = Period([iv(0, 5), iv(3, 8)])
        assert period.intervals == (iv(0, 8),)

    def test_merges_adjacent(self):
        period = Period([iv(0, 5), iv(5, 8)])
        assert period.intervals == (iv(0, 8),)

    def test_keeps_disjoint_sorted(self):
        period = Period([iv(10, 12), iv(0, 2)])
        assert period.intervals == (iv(0, 2), iv(10, 12))

    def test_unbounded_interval(self):
        period = Period([Interval(Timestamp(0), FOREVER), iv(-5, -1)])
        assert len(period) == 2
        assert period.contains_point(Timestamp(10**9))

    @given(periods())
    def test_normalized_invariant(self, period):
        """Intervals are sorted, disjoint, and non-adjacent."""
        for first, second in zip(period.intervals, period.intervals[1:]):
            assert first.end < second.start


class TestMembership:
    def test_contains_point(self):
        period = Period([iv(0, 2), iv(5, 8)])
        assert period.contains_point(Timestamp(1))
        assert not period.contains_point(Timestamp(3))
        assert period.contains_point(Timestamp(5))
        assert not period.contains_point(Timestamp(8))

    def test_span(self):
        assert Period([iv(0, 2), iv(5, 8)]).span() == iv(0, 8)
        assert Period.empty().span() is None


class TestAlgebra:
    def test_union(self):
        assert Period([iv(0, 3)]).union(Period([iv(2, 5)])) == Period([iv(0, 5)])

    def test_intersection(self):
        left = Period([iv(0, 5), iv(10, 15)])
        right = Period([iv(3, 12)])
        assert left.intersection(right) == Period([iv(3, 5), iv(10, 12)])

    def test_difference(self):
        base = Period([iv(0, 10)])
        cut = Period([iv(2, 4), iv(6, 8)])
        assert base.difference(cut) == Period([iv(0, 2), iv(4, 6), iv(8, 10)])

    def test_overlaps(self):
        assert Period([iv(0, 5)]).overlaps(Period([iv(4, 6)]))
        assert not Period([iv(0, 5)]).overlaps(Period([iv(5, 6)]))

    @given(periods(), periods())
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(periods(), periods())
    def test_intersection_commutative(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(periods(), periods(), periods())
    def test_union_associative(self, a, b, c):
        assert a.union(b).union(c) == a.union(b.union(c))

    @given(periods(), periods())
    def test_difference_disjoint_from_subtrahend(self, a, b):
        assert not a.difference(b).overlaps(b)

    @given(periods(), periods())
    def test_partition_identity(self, a, b):
        """(a - b) union (a intersect b) == a."""
        assert a.difference(b).union(a.intersection(b)) == a

    @given(periods())
    def test_union_idempotent(self, a):
        assert a.union(a) == a

    @given(periods())
    def test_difference_with_self_is_empty(self, a):
        assert a.difference(a).is_empty

    @given(periods(), periods())
    def test_demorgan_on_membership(self, a, b):
        """Point membership distributes over union and intersection."""
        for point in (Timestamp(i) for i in range(-100, 131, 7)):
            assert a.union(b).contains_point(point) == (
                a.contains_point(point) or b.contains_point(point)
            )
            assert a.intersection(b).contains_point(point) == (
                a.contains_point(point) and b.contains_point(point)
            )
