"""Unit and property tests for half-open intervals."""

import pytest
from hypothesis import given

from repro.chronos.duration import Duration
from repro.chronos.interval import Interval
from repro.chronos.timestamp import FOREVER, NEGATIVE_INFINITY, Timestamp

from tests.conftest import intervals


def iv(start: int, end: int) -> Interval:
    return Interval(Timestamp(start), Timestamp(end))


class TestConstruction:
    def test_requires_start_before_end(self):
        with pytest.raises(ValueError):
            iv(5, 5)
        with pytest.raises(ValueError):
            iv(6, 5)

    def test_rejects_non_timepoints(self):
        with pytest.raises(TypeError):
            Interval(0, 5)

    def test_unbounded_endpoints(self):
        current = Interval(Timestamp(3), FOREVER)
        assert not current.is_bounded
        assert Interval(NEGATIVE_INFINITY, FOREVER).contains_point(Timestamp(0))

    def test_duration(self):
        assert iv(2, 9).duration() == Duration(7)
        with pytest.raises(ValueError):
            Interval(Timestamp(0), FOREVER).duration()


class TestPointPredicates:
    def test_half_open_semantics(self):
        interval = iv(2, 5)
        assert interval.contains_point(Timestamp(2))
        assert interval.contains_point(Timestamp(4))
        assert not interval.contains_point(Timestamp(5))
        assert not interval.contains_point(Timestamp(1))


class TestIntervalPredicates:
    def test_contains(self):
        assert iv(0, 10).contains(iv(2, 5))
        assert iv(0, 10).contains(iv(0, 10))
        assert not iv(0, 10).contains(iv(5, 11))

    def test_overlaps(self):
        assert iv(0, 5).overlaps(iv(4, 8))
        assert not iv(0, 5).overlaps(iv(5, 8))  # meets is not overlap
        assert not iv(0, 5).overlaps(iv(6, 8))

    def test_meets_and_before(self):
        assert iv(0, 5).meets(iv(5, 8))
        assert iv(0, 4).before(iv(5, 8))
        assert not iv(0, 5).before(iv(5, 8))

    @given(intervals(), intervals())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)


class TestSetOperations:
    def test_intersection(self):
        assert iv(0, 5).intersection(iv(3, 8)) == iv(3, 5)
        assert iv(0, 5).intersection(iv(5, 8)) is None

    def test_union(self):
        assert iv(0, 5).union(iv(3, 8)) == iv(0, 8)
        assert iv(0, 5).union(iv(5, 8)) == iv(0, 8)  # adjacent merge
        assert iv(0, 5).union(iv(6, 8)) is None

    def test_difference(self):
        assert list(iv(0, 10).difference(iv(3, 6))) == [iv(0, 3), iv(6, 10)]
        assert list(iv(0, 10).difference(iv(0, 10))) == []
        assert list(iv(0, 10).difference(iv(-5, 5))) == [iv(5, 10)]

    @given(intervals(), intervals())
    def test_intersection_commutative(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(intervals(), intervals())
    def test_intersection_contained_in_both(self, a, b):
        common = a.intersection(b)
        if common is not None:
            assert a.contains(common) and b.contains(common)

    @given(intervals(), intervals())
    def test_difference_disjoint_from_cut(self, a, b):
        for piece in a.difference(b):
            assert not piece.overlaps(b)
            assert a.contains(piece)


class TestDunder:
    def test_equality_and_hash(self):
        assert iv(1, 2) == iv(1, 2)
        assert hash(iv(1, 2)) == hash(iv(1, 2))
        assert iv(1, 2) != iv(1, 3)

    def test_repr_roundtrip_information(self):
        assert "Timestamp(1" in repr(iv(1, 2))
