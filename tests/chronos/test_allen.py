"""Unit and property tests for Allen's thirteen interval relations.

These tests constitute the E5 structural reproduction: the thirteen
relations are total, mutually exclusive, and correctly paired with their
inverses, matching [All83] as cited in Section 3.4 of the paper.
"""

import itertools

import pytest
from hypothesis import given

from repro.chronos.allen import AllenRelation, allen_relation, compose
from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp

from tests.conftest import intervals


def iv(start: int, end: int) -> Interval:
    return Interval(Timestamp(start), Timestamp(end))


class TestClassification:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            (iv(0, 2), iv(3, 5), AllenRelation.BEFORE),
            (iv(0, 3), iv(3, 5), AllenRelation.MEETS),
            (iv(0, 4), iv(3, 6), AllenRelation.OVERLAPS),
            (iv(0, 2), iv(0, 5), AllenRelation.STARTS),
            (iv(1, 4), iv(0, 5), AllenRelation.DURING),
            (iv(3, 5), iv(0, 5), AllenRelation.FINISHES),
            (iv(0, 5), iv(0, 5), AllenRelation.EQUAL),
            (iv(3, 5), iv(0, 2), AllenRelation.BEFORE_INVERSE),
            (iv(3, 5), iv(0, 3), AllenRelation.MEETS_INVERSE),
            (iv(3, 6), iv(0, 4), AllenRelation.OVERLAPS_INVERSE),
            (iv(0, 5), iv(0, 2), AllenRelation.STARTS_INVERSE),
            (iv(0, 5), iv(1, 4), AllenRelation.DURING_INVERSE),
            (iv(0, 5), iv(3, 5), AllenRelation.FINISHES_INVERSE),
        ],
    )
    def test_each_relation_has_a_witness(self, a, b, expected):
        assert allen_relation(a, b) is expected

    def test_thirteen_relations_exist(self):
        assert len(AllenRelation) == 13

    def test_all_thirteen_realizable(self):
        """Every relation is realized by some pair over small endpoints."""
        points = [Timestamp(i) for i in range(5)]
        pairs = [
            Interval(points[i], points[j])
            for i, j in itertools.combinations(range(5), 2)
        ]
        seen = {allen_relation(a, b) for a in pairs for b in pairs}
        assert seen == set(AllenRelation)

    @given(intervals(), intervals())
    def test_total_and_single_valued(self, a, b):
        # allen_relation always returns exactly one member: totality is
        # the absence of exceptions, exclusivity is the inverse check.
        relation = allen_relation(a, b)
        assert isinstance(relation, AllenRelation)

    @given(intervals(), intervals())
    def test_inverse_relationship(self, a, b):
        assert allen_relation(a, b).inverse is allen_relation(b, a)

    @given(intervals())
    def test_equal_is_reflexive(self, a):
        assert allen_relation(a, a) is AllenRelation.EQUAL

    def test_mutual_exclusion_via_defining_predicates(self):
        """Check the 13 textbook predicates directly: exactly one holds."""
        points = [Timestamp(i) for i in range(6)]
        pairs = [
            Interval(points[i], points[j])
            for i, j in itertools.combinations(range(6), 2)
        ]
        for a, b in itertools.product(pairs, repeat=2):
            matches = [rel for rel in AllenRelation if _defining(rel, a, b)]
            assert matches == [allen_relation(a, b)]


def _defining(rel: AllenRelation, a: Interval, b: Interval) -> bool:
    """The independent textbook definition of each relation."""
    s1, e1, s2, e2 = a.start, a.end, b.start, b.end
    if rel is AllenRelation.BEFORE:
        return e1 < s2
    if rel is AllenRelation.MEETS:
        return e1 == s2
    if rel is AllenRelation.OVERLAPS:
        return s1 < s2 < e1 < e2
    if rel is AllenRelation.STARTS:
        return s1 == s2 and e1 < e2
    if rel is AllenRelation.DURING:
        return s2 < s1 and e1 < e2
    if rel is AllenRelation.FINISHES:
        return e1 == e2 and s2 < s1
    if rel is AllenRelation.EQUAL:
        return s1 == s2 and e1 == e2
    return _defining(rel.inverse, b, a)


class TestInverses:
    def test_equal_is_self_inverse(self):
        assert AllenRelation.EQUAL.inverse is AllenRelation.EQUAL

    def test_inverse_is_involution(self):
        for rel in AllenRelation:
            assert rel.inverse.inverse is rel

    def test_is_inverse_flag(self):
        assert AllenRelation.BEFORE_INVERSE.is_inverse
        assert not AllenRelation.BEFORE.is_inverse
        assert not AllenRelation.EQUAL.is_inverse


class TestComposition:
    def test_before_before_is_before(self):
        assert compose(AllenRelation.BEFORE, AllenRelation.BEFORE) == {AllenRelation.BEFORE}

    def test_meets_meets_is_before(self):
        assert compose(AllenRelation.MEETS, AllenRelation.MEETS) == {AllenRelation.BEFORE}

    def test_equal_is_identity(self):
        for rel in AllenRelation:
            assert compose(AllenRelation.EQUAL, rel) == {rel}
            assert compose(rel, AllenRelation.EQUAL) == {rel}

    def test_overlaps_overlaps(self):
        assert compose(AllenRelation.OVERLAPS, AllenRelation.OVERLAPS) == {
            AllenRelation.BEFORE,
            AllenRelation.MEETS,
            AllenRelation.OVERLAPS,
        }

    def test_all_169_entries_defined_and_nonempty(self):
        for r1 in AllenRelation:
            for r2 in AllenRelation:
                assert compose(r1, r2)

    @given(intervals(), intervals(), intervals())
    def test_composition_soundness(self, a, b, c):
        """The actual A-to-C relation is always in compose(A->B, B->C)."""
        assert allen_relation(a, c) in compose(allen_relation(a, b), allen_relation(b, c))

    def test_composition_respects_inverse_symmetry(self):
        """compose(r1, r2) inverse-mirrors compose(r2^-1, r1^-1)."""
        for r1 in AllenRelation:
            for r2 in AllenRelation:
                direct = compose(r1, r2)
                mirrored = {rel.inverse for rel in compose(r2.inverse, r1.inverse)}
                assert direct == mirrored
