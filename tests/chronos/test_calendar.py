"""Unit and property tests for the proleptic Gregorian calendar."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro.chronos.calendar import (
    GregorianDate,
    add_months,
    add_years,
    date_to_ordinal,
    days_in_month,
    days_in_year,
    is_leap_year,
    ordinal_to_date,
)


class TestLeapYears:
    @pytest.mark.parametrize("year", [1992, 1996, 2000, 2024, 2400])
    def test_leap(self, year):
        assert is_leap_year(year)

    @pytest.mark.parametrize("year", [1900, 2100, 1991, 2026])
    def test_not_leap(self, year):
        assert not is_leap_year(year)

    def test_days_in_year(self):
        assert days_in_year(2024) == 366
        assert days_in_year(2026) == 365


class TestDaysInMonth:
    def test_february(self):
        assert days_in_month(2024, 2) == 29
        assert days_in_month(2026, 2) == 28

    def test_thirty_and_thirty_one(self):
        assert days_in_month(2026, 4) == 30
        assert days_in_month(2026, 7) == 31

    def test_invalid_month(self):
        with pytest.raises(ValueError):
            days_in_month(2026, 13)


class TestOrdinals:
    def test_epoch(self):
        assert date_to_ordinal(1, 1, 1) == 0
        assert ordinal_to_date(0) == GregorianDate(1, 1, 1)

    def test_against_datetime(self):
        for date in (
            datetime.date(1992, 2, 3),
            datetime.date(2000, 2, 29),
            datetime.date(2026, 7, 5),
            datetime.date(1, 12, 31),
        ):
            ours = date_to_ordinal(date.year, date.month, date.day)
            assert ours == date.toordinal() - 1

    @given(st.integers(min_value=0, max_value=1_000_000))
    def test_roundtrip(self, ordinal):
        date = ordinal_to_date(ordinal)
        assert date.to_ordinal() == ordinal

    @given(
        st.integers(min_value=1, max_value=3000),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=28),
    )
    def test_roundtrip_from_date(self, year, month, day):
        ordinal = date_to_ordinal(year, month, day)
        assert ordinal_to_date(ordinal) == GregorianDate(year, month, day)

    def test_invalid_day_rejected(self):
        with pytest.raises(ValueError):
            date_to_ordinal(2026, 2, 29)


class TestGregorianDate:
    def test_validation(self):
        with pytest.raises(ValueError):
            GregorianDate(2026, 2, 29)
        with pytest.raises(ValueError):
            GregorianDate(2026, 0, 1)

    def test_ordering(self):
        assert GregorianDate(2026, 1, 31) < GregorianDate(2026, 2, 1)

    def test_str(self):
        assert str(GregorianDate(1992, 2, 3)) == "1992-02-03"


class TestAddMonths:
    def test_simple(self):
        assert add_months(GregorianDate(2026, 1, 15), 1) == GregorianDate(2026, 2, 15)

    def test_clamping_to_short_month(self):
        # The paper's "one month contains 28 to 31 days" example.
        assert add_months(GregorianDate(2026, 1, 31), 1) == GregorianDate(2026, 2, 28)
        assert add_months(GregorianDate(2024, 1, 31), 1) == GregorianDate(2024, 2, 29)

    def test_year_rollover(self):
        assert add_months(GregorianDate(2026, 11, 30), 3) == GregorianDate(2027, 2, 28)
        assert add_months(GregorianDate(2026, 1, 15), -2) == GregorianDate(2025, 11, 15)

    @given(
        st.integers(min_value=1900, max_value=2100),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=28),
        st.integers(min_value=-60, max_value=60),
    )
    def test_day_at_most_original(self, year, month, day, months):
        shifted = add_months(GregorianDate(year, month, day), months)
        assert shifted.day <= day or shifted.day == day

    @given(
        st.integers(min_value=1900, max_value=2100),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=28),
        st.integers(min_value=-24, max_value=24),
    )
    def test_inverse_for_safe_days(self, year, month, day, months):
        # Days <= 28 never clamp, so adding then subtracting months is exact.
        date = GregorianDate(year, month, day)
        assert add_months(add_months(date, months), -months) == date

    def test_add_years_leap_clamp(self):
        assert add_years(GregorianDate(2024, 2, 29), 1) == GregorianDate(2025, 2, 28)
