"""Unit tests for transaction-time generators."""

import pytest

from repro.chronos.clock import LogicalClock, SimulatedWallClock
from repro.chronos.duration import Duration
from repro.chronos.timestamp import Timestamp


class TestLogicalClock:
    def test_strictly_increasing(self):
        clock = LogicalClock()
        stamps = [clock.now() for _ in range(100)]
        assert all(a < b for a, b in zip(stamps, stamps[1:]))

    def test_start_offset(self):
        assert LogicalClock(start=42).now() == Timestamp(42)

    def test_peek_does_not_consume(self):
        clock = LogicalClock()
        assert clock.peek() == clock.peek() == clock.now()


class TestSimulatedWallClock:
    def test_advance(self):
        clock = SimulatedWallClock()
        clock.advance(Duration(10))
        assert clock.now() == Timestamp(10)

    def test_uniqueness_under_bursts(self):
        """Multiple now() calls without advancing still yield unique stamps."""
        clock = SimulatedWallClock()
        stamps = [clock.now() for _ in range(5)]
        assert len(set(stamps)) == 5
        assert all(a < b for a, b in zip(stamps, stamps[1:]))

    def test_advance_to(self):
        clock = SimulatedWallClock()
        clock.advance_to(Timestamp(100))
        assert clock.now() == Timestamp(100)
        clock.advance_to(Timestamp(50))  # no going back
        assert clock.now() > Timestamp(100)

    def test_cannot_move_backwards(self):
        clock = SimulatedWallClock()
        with pytest.raises(ValueError):
            clock.advance(Duration(-1))

    def test_monotone_after_burst_then_advance(self):
        clock = SimulatedWallClock()
        burst = [clock.now() for _ in range(3)]
        clock.advance(Duration(1))  # less than the burst consumed
        assert clock.now() > burst[-1]

    def test_peek(self):
        clock = SimulatedWallClock()
        clock.advance(Duration(7))
        assert clock.peek() == Timestamp(7)
        assert clock.now() == Timestamp(7)
        assert clock.peek() == Timestamp(8)
