"""Unit and property tests for fixed and calendric durations."""

import pytest
from hypothesis import given, strategies as st

from repro.chronos.calendar import GregorianDate
from repro.chronos.duration import CalendricDuration, Duration
from repro.chronos.granularity import Granularity
from repro.chronos.timestamp import Timestamp


class TestDuration:
    def test_requires_int(self):
        with pytest.raises(TypeError):
            Duration(1.5)

    def test_microseconds(self):
        assert Duration(2, "minute").microseconds == 120_000_000

    def test_zero(self):
        assert Duration.zero().is_zero()
        assert not Duration(1).is_zero()

    def test_negative(self):
        assert Duration(-1).is_negative()
        assert not Duration(0).is_negative()

    def test_addition_mixed_granularity(self):
        assert Duration(1, "minute") + Duration(30, "second") == Duration(90, "second")

    def test_subtraction_and_negation(self):
        assert Duration(10) - Duration(4) == Duration(6)
        assert -Duration(5) == Duration(-5)

    def test_scalar_multiplication(self):
        assert Duration(3) * 4 == Duration(12)
        assert 4 * Duration(3) == Duration(12)

    def test_floordiv_by_duration_gives_count(self):
        assert Duration(90, "second") // Duration(1, "minute") == 1
        assert Duration(120, "second") // Duration(1, "minute") == 2

    def test_floordiv_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            Duration(1) // Duration(0)

    def test_mod(self):
        assert Duration(90, "second") % Duration(1, "minute") == Duration(30, "second")

    def test_ordering(self):
        assert Duration(59, "second") < Duration(1, "minute")
        assert Duration(60, "second") == Duration(1, "minute")

    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_addition_commutes(self, a, b):
        assert Duration(a) + Duration(b) == Duration(b) + Duration(a)

    @given(st.integers(-10**6, 10**6))
    def test_negation_involution(self, ticks):
        assert -(-Duration(ticks)) == Duration(ticks)


class TestCalendricDuration:
    def test_years_are_twelve_months(self):
        assert CalendricDuration(years=2) == CalendricDuration(months=24)

    def test_requires_ints(self):
        with pytest.raises(TypeError):
            CalendricDuration(months=1.5)

    def test_negation(self):
        assert -CalendricDuration(months=3) == CalendricDuration(months=-3)

    def test_variable_realized_length(self):
        # One month after 1 Feb is 28 days; after 1 Jul it is 31 days.
        feb = Timestamp.from_date(2026, 2, 1)
        jul = Timestamp.from_date(2026, 7, 1)
        month = CalendricDuration(months=1)
        assert (feb + month) - feb == Duration(28, "day")
        assert (jul + month) - jul == Duration(31, "day")

    def test_add_to_via_operator(self):
        ts = Timestamp.from_date(2026, 1, 15)
        assert (ts + CalendricDuration(months=1)).to_date() == GregorianDate(2026, 2, 15)

    def test_subtract_via_operator(self):
        ts = Timestamp.from_date(2026, 3, 31)
        assert (ts - CalendricDuration(months=1)).to_date() == GregorianDate(2026, 2, 28)

    @given(
        st.integers(min_value=1950, max_value=2050),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=28),
        st.integers(min_value=-36, max_value=36),
    )
    def test_roundtrip_safe_days(self, year, month, day, months):
        ts = Timestamp.from_date(year, month, day)
        duration = CalendricDuration(months=months)
        assert ((ts + duration) - duration) == ts

    def test_result_granularity_preserved_for_day_stamps(self):
        ts = Timestamp.from_date(2026, 1, 15)
        shifted = ts + CalendricDuration(months=1)
        assert shifted.granularity is Granularity.DAY
