"""Unit tests for granularities and conversions."""

import pytest

from repro.chronos.granularity import Granularity, as_granularity


class TestGranularity:
    def test_microsecond_lengths_are_consistent(self):
        assert Granularity.MILLISECOND.microseconds == 1_000
        assert Granularity.SECOND.microseconds == 1_000_000
        assert Granularity.MINUTE.microseconds == 60 * Granularity.SECOND.microseconds
        assert Granularity.HOUR.microseconds == 60 * Granularity.MINUTE.microseconds
        assert Granularity.DAY.microseconds == 24 * Granularity.HOUR.microseconds
        assert Granularity.WEEK.microseconds == 7 * Granularity.DAY.microseconds

    def test_finer_and_coarser(self):
        assert Granularity.SECOND.is_finer_than(Granularity.MINUTE)
        assert Granularity.MINUTE.is_coarser_than(Granularity.SECOND)
        assert not Granularity.SECOND.is_finer_than(Granularity.SECOND)
        assert not Granularity.SECOND.is_coarser_than(Granularity.SECOND)

    def test_is_multiple_of(self):
        assert Granularity.HOUR.is_multiple_of(Granularity.MINUTE)
        assert Granularity.DAY.is_multiple_of(Granularity.SECOND)
        assert not Granularity.SECOND.is_multiple_of(Granularity.MINUTE)
        # A week is a whole number of days but a day is not a whole
        # number of weeks.
        assert Granularity.WEEK.is_multiple_of(Granularity.DAY)
        assert not Granularity.DAY.is_multiple_of(Granularity.WEEK)

    def test_convert_to_finer_is_exact(self):
        assert Granularity.MINUTE.convert(3, Granularity.SECOND) == 180
        assert Granularity.DAY.convert(2, Granularity.HOUR) == 48

    def test_convert_to_coarser_floors(self):
        assert Granularity.SECOND.convert(119, Granularity.MINUTE) == 1
        assert Granularity.SECOND.convert(-1, Granularity.MINUTE) == -1
        assert Granularity.SECOND.convert(-61, Granularity.MINUTE) == -2

    def test_convert_roundtrip_through_finer(self):
        ticks = 37
        fine = Granularity.HOUR.convert(ticks, Granularity.MICROSECOND)
        assert Granularity.MICROSECOND.convert(fine, Granularity.HOUR) == ticks


class TestAsGranularity:
    def test_passthrough(self):
        assert as_granularity(Granularity.DAY) is Granularity.DAY

    @pytest.mark.parametrize("name", ["second", "SECOND", "Second"])
    def test_names_case_insensitive(self, name):
        assert as_granularity(name) is Granularity.SECOND

    def test_unknown_name_lists_valid_ones(self):
        with pytest.raises(ValueError, match="unknown granularity"):
            as_granularity("fortnight")
