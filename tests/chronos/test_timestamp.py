"""Unit and property tests for time-stamps and the sentinels."""

import pytest
from hypothesis import given, strategies as st

from repro.chronos.calendar import GregorianDate
from repro.chronos.duration import CalendricDuration, Duration
from repro.chronos.granularity import Granularity
from repro.chronos.timestamp import FOREVER, NEGATIVE_INFINITY, Timestamp, as_timepoint


class TestConstruction:
    def test_requires_int_ticks(self):
        with pytest.raises(TypeError):
            Timestamp(1.5)

    def test_granularity_by_name(self):
        assert Timestamp(5, "hour").granularity is Granularity.HOUR

    def test_microseconds(self):
        assert Timestamp(2, "second").microseconds == 2_000_000


class TestOrdering:
    def test_same_granularity(self):
        assert Timestamp(1) < Timestamp(2)
        assert Timestamp(2) <= Timestamp(2)
        assert Timestamp(3) > Timestamp(2)

    def test_cross_granularity(self):
        assert Timestamp(60, "second") == Timestamp(1, "minute")
        assert Timestamp(59, "second") < Timestamp(1, "minute")
        assert Timestamp(2, "hour") > Timestamp(119, "minute")

    def test_hash_consistent_with_equality(self):
        assert hash(Timestamp(60, "second")) == hash(Timestamp(1, "minute"))

    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_total_order_matches_ticks(self, a, b):
        assert (Timestamp(a) < Timestamp(b)) == (a < b)
        assert (Timestamp(a) == Timestamp(b)) == (a == b)


class TestSentinels:
    def test_forever_is_maximal(self):
        assert Timestamp(10**12) < FOREVER
        assert FOREVER > Timestamp(0)
        assert not FOREVER < FOREVER
        assert FOREVER == FOREVER

    def test_negative_infinity_is_minimal(self):
        assert NEGATIVE_INFINITY < Timestamp(-(10**12))
        assert NEGATIVE_INFINITY < FOREVER

    def test_sentinels_not_equal_to_timestamps(self):
        assert FOREVER != Timestamp(0)
        assert Timestamp(0) != NEGATIVE_INFINITY

    def test_as_timepoint(self):
        assert as_timepoint(5) == Timestamp(5)
        assert as_timepoint(FOREVER) is FOREVER
        with pytest.raises(TypeError):
            as_timepoint("tomorrow")


class TestArithmetic:
    def test_add_duration_same_granularity(self):
        assert Timestamp(10) + Duration(5) == Timestamp(15)

    def test_subtract_duration(self):
        assert Timestamp(10) - Duration(3) == Timestamp(7)

    def test_add_duration_finer_granularity_refines(self):
        result = Timestamp(1, "minute") + Duration(30, "second")
        assert result == Timestamp(90, "second")

    def test_difference_is_duration(self):
        assert Timestamp(20) - Timestamp(5) == Duration(15)

    def test_difference_uses_finer_granularity(self):
        diff = Timestamp(1, "minute") - Timestamp(30, "second")
        assert diff == Duration(30, "second")

    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_add_then_subtract_roundtrip(self, ticks, delta):
        ts = Timestamp(ticks)
        assert (ts + Duration(delta)) - Duration(delta) == ts


class TestCalendricArithmetic:
    def test_month_addition_clamps(self):
        jan31 = Timestamp.from_date(2026, 1, 31)
        assert (jan31 + CalendricDuration(months=1)).to_date() == GregorianDate(2026, 2, 28)

    def test_month_subtraction(self):
        mar31 = Timestamp.from_date(2026, 3, 31)
        assert (mar31 - CalendricDuration(months=1)).to_date() == GregorianDate(2026, 2, 28)

    def test_intra_day_position_preserved(self):
        base = Timestamp.from_date(2026, 3, 15, granularity="hour") + Duration(9, "hour")
        shifted = base + CalendricDuration(months=2)
        assert shifted.to_date() == GregorianDate(2026, 5, 15)
        midnight = Timestamp.from_date(2026, 5, 15)
        assert shifted - midnight == Duration(9, "hour")


class TestRounding:
    def test_floor_to(self):
        assert Timestamp(3_661, "second").floor_to("hour") == Timestamp(1, "hour")

    def test_ceil_to(self):
        assert Timestamp(3_661, "second").ceil_to("hour") == Timestamp(2, "hour")

    def test_ceil_on_boundary_is_identity(self):
        assert Timestamp(7_200, "second").ceil_to("hour") == Timestamp(2, "hour")

    def test_floor_negative(self):
        assert Timestamp(-1, "second").floor_to("minute") == Timestamp(-1, "minute")

    @given(st.integers(-10**6, 10**6))
    def test_floor_leq_ceil(self, ticks):
        ts = Timestamp(ticks, "second")
        assert ts.floor_to("minute") <= ts <= ts.ceil_to("minute")


class TestDates:
    def test_from_date_roundtrip(self):
        ts = Timestamp.from_date(1992, 2, 3)
        assert ts.to_date() == GregorianDate(1992, 2, 3)

    def test_from_date_with_granularity(self):
        day = Timestamp.from_date(2026, 1, 2)
        seconds = Timestamp.from_date(2026, 1, 2, granularity="second")
        assert day == seconds
