"""Edge-case tests across the chronos substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.chronos.duration import Duration
from repro.chronos.granularity import Granularity
from repro.chronos.interval import Interval
from repro.chronos.period import Period
from repro.chronos.timestamp import FOREVER, NEGATIVE_INFINITY, Timestamp


class TestTimestampRefinement:
    def test_adding_non_multiple_duration_refines_granularity(self):
        # 1 minute + 30 seconds cannot stay at minute granularity.
        result = Timestamp(1, "minute") + Duration(30, "second")
        assert result.granularity is Granularity.SECOND
        assert result == Timestamp(90, "second")

    def test_adding_multiple_keeps_granularity(self):
        result = Timestamp(1, "minute") + Duration(120, "second")
        assert result.granularity is Granularity.MINUTE

    def test_odd_microsecond_offsets(self):
        result = Timestamp(1, "second") + Duration(1, "microsecond")
        assert result.granularity is Granularity.MICROSECOND
        assert result.microseconds == 1_000_001

    @given(st.integers(-10**9, 10**9))
    def test_at_granularity_floors(self, micro):
        ts = Timestamp(micro, "microsecond")
        floored = ts.at_granularity("second")
        assert floored <= ts
        assert ts.microseconds - floored.microseconds < 1_000_000


class TestDurationEdge:
    def test_floordiv_negative_duration(self):
        assert Duration(-90, "second") // Duration(1, "minute") == -2

    def test_floordiv_int(self):
        assert Duration(90, "second") // 2 == Duration(45, "second")

    def test_mod_returns_microsecond_remainder(self):
        remainder = Duration(61, "second") % Duration(1, "minute")
        assert remainder == Duration(1, "second")
        assert remainder.granularity is Granularity.MICROSECOND

    def test_mod_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            Duration(1) % Duration(0)

    def test_mixed_granularity_comparisons(self):
        assert Duration(1, "day") == Duration(24, "hour")
        assert Duration(1, "week") > Duration(6, "day")


class TestIntervalsWithSentinels:
    def test_always_interval(self):
        always = Interval(NEGATIVE_INFINITY, FOREVER)
        assert always.contains_point(Timestamp(-(10**15)))
        assert always.contains_point(Timestamp(10**15))
        assert not always.is_bounded

    def test_open_ended_overlap(self):
        current = Interval(Timestamp(10), FOREVER)
        past = Interval(NEGATIVE_INFINITY, Timestamp(10))
        assert not current.overlaps(past)
        assert past.meets(current)
        assert past.union(current) == Interval(NEGATIVE_INFINITY, FOREVER)

    def test_difference_with_unbounded_cut(self):
        base = Interval(Timestamp(0), Timestamp(10))
        pieces = list(base.difference(Interval(Timestamp(5), FOREVER)))
        assert pieces == [Interval(Timestamp(0), Timestamp(5))]


class TestPeriodWithSentinels:
    def test_complement_style_difference(self):
        everything = Period.of(NEGATIVE_INFINITY, FOREVER)
        hole = Period.of(Timestamp(0), Timestamp(10))
        rest = everything.difference(hole)
        assert len(rest) == 2
        assert rest.contains_point(Timestamp(-1))
        assert rest.contains_point(Timestamp(10))
        assert not rest.contains_point(Timestamp(5))

    def test_union_collapses_to_everything(self):
        left = Period.of(NEGATIVE_INFINITY, Timestamp(5))
        right = Period.of(Timestamp(5), FOREVER)
        assert left.union(right) == Period.of(NEGATIVE_INFINITY, FOREVER)


class TestSentinelArithmeticSafety:
    def test_sentinels_not_orderable_with_other_types(self):
        with pytest.raises(TypeError):
            FOREVER < 5  # noqa: B015

    def test_sentinel_identity(self):
        assert FOREVER is not NEGATIVE_INFINITY
        assert FOREVER != NEGATIVE_INFINITY
        assert hash(FOREVER) != hash(NEGATIVE_INFINITY)
