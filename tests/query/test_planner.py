"""Unit and property tests for the specialization-aware planner.

Two obligations: (1) the planner picks the strategy the declared
specialization licenses, and (2) every plan returns exactly the
reference executor's answer -- on both engines, under random data.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.query import (
    BitemporalSlice,
    CurrentState,
    NaiveExecutor,
    Planner,
    Rollback,
    Scan,
    ValidOverlap,
    ValidTimeslice,
)
from repro.relation.schema import TemporalSchema, ValidTimeKind
from repro.relation.temporal_relation import TemporalRelation
from repro.storage.sqlite_backend import SQLiteEngine


def build_relation(specializations, offsets, kind=ValidTimeKind.EVENT, engine=None):
    """A relation whose i-th element has tt = 10*i and vt = tt + offset."""
    schema = TemporalSchema(name="r", valid_time_kind=kind, specializations=specializations)
    clock = SimulatedWallClock(start=0)
    relation = TemporalRelation(schema, clock=clock, engine=engine)
    for i, offset in enumerate(offsets):
        clock.advance_to(Timestamp(10 * i))
        if kind is ValidTimeKind.EVENT:
            relation.insert("obj", Timestamp(10 * i + offset), {})
        else:
            start = 10 * i + offset
            relation.insert("obj", Interval(Timestamp(start), Timestamp(start + 8)), {})
    return relation


class TestStrategySelection:
    def test_degenerate_uses_tt_point_lookup(self):
        relation = build_relation(["degenerate"], [0] * 50)
        plan = Planner(relation).plan(ValidTimeslice(Scan(relation), Timestamp(200)))
        assert plan.strategy == "degenerate-rollback"

    def test_non_decreasing_uses_binary_search(self):
        relation = build_relation(["globally non-decreasing"], [3] * 50)
        plan = Planner(relation).plan(ValidTimeslice(Scan(relation), Timestamp(203)))
        assert plan.strategy == "monotone-binary-search"

    def test_sequential_event_uses_binary_search(self):
        relation = build_relation(["globally sequential"], [-1] * 50)
        plan = Planner(relation).plan(ValidTimeslice(Scan(relation), Timestamp(199)))
        assert plan.strategy == "monotone-binary-search"

    def test_non_increasing_uses_descending_search(self):
        schema = TemporalSchema(name="arch", specializations=["globally non-increasing"])
        clock = SimulatedWallClock(start=0)
        relation = TemporalRelation(schema, clock=clock)
        for i in range(50):
            clock.advance_to(Timestamp(10 * i))
            relation.insert("dig", Timestamp(-10 * i), {})
        plan = Planner(relation).plan(ValidTimeslice(Scan(relation), Timestamp(-200)))
        assert plan.strategy == "monotone-binary-search-descending"

    def test_bounded_uses_tt_window(self):
        relation = build_relation(["strongly bounded(5s, 5s)"], [(-1) ** i * 4 for i in range(50)])
        plan = Planner(relation).plan(ValidTimeslice(Scan(relation), Timestamp(200)))
        assert plan.strategy == "bounded-tt-window"

    def test_one_sided_bound_also_windows(self):
        relation = build_relation(["retroactive"], [-3] * 50)
        plan = Planner(relation).plan(ValidTimeslice(Scan(relation), Timestamp(197)))
        assert plan.strategy == "bounded-tt-window"

    def test_general_relation_falls_back_to_engine_index(self):
        relation = build_relation([], [7, -20, 3, 40, -11])
        plan = Planner(relation).plan(ValidTimeslice(Scan(relation), Timestamp(3)))
        assert plan.strategy == "engine-index"

    def test_per_partition_ordering_does_not_license_global_search(self):
        """Per-partition sequentiality says nothing about the global
        valid-time order, so binary search would be unsound."""
        from repro.core.taxonomy import GloballySequential, PerPartition

        schema = TemporalSchema(
            name="r", specializations=[PerPartition(GloballySequential())]
        )
        relation = TemporalRelation(schema, clock=SimulatedWallClock(start=0))
        planner = Planner(relation)
        plan = planner.plan(ValidTimeslice(Scan(relation), Timestamp(0)))
        assert plan.strategy == "engine-index"

    def test_sequential_intervals_use_binary_search(self):
        schema = TemporalSchema(
            name="weeks",
            valid_time_kind=ValidTimeKind.INTERVAL,
            specializations=[],
        )
        from repro.core.taxonomy import IntervalGloballySequential

        schema.specializations = (IntervalGloballySequential(),)
        clock = SimulatedWallClock(start=0)
        relation = TemporalRelation(schema, clock=clock)
        for week in range(20):
            clock.advance_to(Timestamp(week * 10 + 9))
            relation.insert(
                "emp", Interval(Timestamp(week * 10), Timestamp(week * 10 + 7)), {}
            )
        plan = Planner(relation).plan(ValidTimeslice(Scan(relation), Timestamp(55)))
        assert plan.strategy == "sequential-interval-search"
        assert len(plan.execute()) == 1

    def test_rollback_always_prefix(self):
        relation = build_relation([], [0] * 10)
        plan = Planner(relation).plan(Rollback(Scan(relation), Timestamp(50)))
        assert plan.strategy == "rollback-prefix"

    def test_unknown_shape_falls_back_to_naive(self):
        relation = build_relation([], [0])
        nested = ValidTimeslice(CurrentState(Scan(relation)), Timestamp(0))
        plan = Planner(relation).plan(nested)
        assert plan.strategy == "naive"

    def test_sqlite_engine_uses_sql_paths(self):
        relation = build_relation(["degenerate"], [0] * 10, engine=SQLiteEngine())
        plan = Planner(relation).plan(ValidTimeslice(Scan(relation), Timestamp(50)))
        assert plan.strategy == "engine-index"


class TestWorkSavings:
    def test_degenerate_examines_o1(self):
        relation = build_relation(["degenerate"], [0] * 2000)
        plan = Planner(relation).plan(ValidTimeslice(Scan(relation), Timestamp(10_000)))
        plan.execute()
        assert plan.examined <= 2

    def test_bounded_window_examines_window_only(self):
        relation = build_relation(["strongly bounded(5s, 5s)"], [0] * 2000)
        plan = Planner(relation).plan(ValidTimeslice(Scan(relation), Timestamp(10_000)))
        plan.execute()
        assert plan.examined <= 5

    def test_monotone_examines_log_plus_run(self):
        relation = build_relation(["globally non-decreasing"], [3] * 2000)
        plan = Planner(relation).plan(ValidTimeslice(Scan(relation), Timestamp(10_003)))
        plan.execute()
        assert plan.examined <= 20


class PlanEquivalenceMixin:
    """Plans always produce the reference executor's answer."""

    @staticmethod
    def assert_equivalent(relation, query):
        plan = Planner(relation).plan(query)
        planned = plan.execute()
        reference = NaiveExecutor().run(query)
        assert sorted(e.element_surrogate for e in planned) == sorted(
            e.element_surrogate for e in reference
        ), plan.strategy


class TestPlanEquivalence(PlanEquivalenceMixin):
    @settings(max_examples=25, deadline=None)
    @given(
        offsets=st.lists(st.integers(-5, 5), min_size=1, max_size=40),
        probe=st.integers(-10, 420),
        seed=st.integers(0, 5),
    )
    def test_bounded_random(self, offsets, probe, seed):
        relation = build_relation(["strongly bounded(5s, 5s)"], offsets)
        rng = random.Random(seed)
        for element in list(relation.all_elements()):
            if rng.random() < 0.2:
                relation.delete(element.element_surrogate)
        self.assert_equivalent(
            relation, ValidTimeslice(Scan(relation), Timestamp(probe))
        )

    @settings(max_examples=25, deadline=None)
    @given(
        count=st.integers(1, 40),
        probe=st.integers(-10, 420),
    )
    def test_degenerate_random(self, count, probe):
        relation = build_relation(["degenerate"], [0] * count)
        self.assert_equivalent(
            relation, ValidTimeslice(Scan(relation), Timestamp(probe))
        )

    @settings(max_examples=25, deadline=None)
    @given(
        steps=st.lists(st.integers(0, 4), min_size=1, max_size=40),
        probe=st.integers(-10, 200),
    )
    def test_monotone_random(self, steps, probe):
        schema = TemporalSchema(name="m", specializations=["globally non-decreasing"])
        clock = SimulatedWallClock(start=0)
        relation = TemporalRelation(schema, clock=clock)
        vt = 0
        for i, step in enumerate(steps):
            clock.advance_to(Timestamp(10 * i))
            vt += step
            relation.insert("o", Timestamp(vt), {})
        self.assert_equivalent(
            relation, ValidTimeslice(Scan(relation), Timestamp(probe))
        )

    @settings(max_examples=25, deadline=None)
    @given(
        offsets=st.lists(st.integers(-50, 50), min_size=1, max_size=30),
        tt_probe=st.integers(-5, 350),
    )
    def test_rollback_random(self, offsets, tt_probe):
        relation = build_relation([], offsets)
        self.assert_equivalent(relation, Rollback(Scan(relation), Timestamp(tt_probe)))

    @settings(max_examples=25, deadline=None)
    @given(
        offsets=st.lists(st.integers(-50, 50), min_size=1, max_size=30),
        vt_probe=st.integers(-60, 400),
        tt_probe=st.integers(-5, 350),
    )
    def test_bitemporal_random(self, offsets, vt_probe, tt_probe):
        relation = build_relation([], offsets)
        self.assert_equivalent(
            relation,
            BitemporalSlice(Scan(relation), vt=Timestamp(vt_probe), tt=Timestamp(tt_probe)),
        )

    @settings(max_examples=20, deadline=None)
    @given(
        offsets=st.lists(st.integers(-8, 8), min_size=1, max_size=25),
        low=st.integers(-20, 250),
        width=st.integers(1, 60),
    )
    def test_overlap_random_intervals(self, offsets, low, width):
        relation = build_relation([], offsets, kind=ValidTimeKind.INTERVAL)
        window = Interval(Timestamp(low), Timestamp(low + width))
        self.assert_equivalent(relation, ValidOverlap(Scan(relation), window))

    @settings(max_examples=15, deadline=None)
    @given(
        offsets=st.lists(st.integers(-5, 5), min_size=1, max_size=20),
        probe=st.integers(-10, 220),
    )
    def test_sqlite_equivalence(self, offsets, probe):
        relation = build_relation(
            ["strongly bounded(5s, 5s)"], offsets, engine=SQLiteEngine()
        )
        self.assert_equivalent(
            relation, ValidTimeslice(Scan(relation), Timestamp(probe))
        )
