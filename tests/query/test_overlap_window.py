"""Tests for the bounded-window overlap planner rule."""

from hypothesis import given, settings, strategies as st

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.interval import Interval
from repro.chronos.timestamp import FOREVER, Timestamp
from repro.query import NaiveExecutor, Planner, Scan, ValidOverlap
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation


def build(offsets, specializations=("strongly bounded(5s, 5s)",)):
    schema = TemporalSchema(name="r", specializations=list(specializations))
    clock = SimulatedWallClock(start=0)
    relation = TemporalRelation(schema, clock=clock, keep_backlog=False)
    for i, offset in enumerate(offsets):
        clock.advance_to(Timestamp(10 * i))
        relation.insert("o", Timestamp(10 * i + offset), {})
    return relation


class TestStrategy:
    def test_bounded_relation_uses_window(self):
        relation = build([0] * 50)
        query = ValidOverlap(Scan(relation), Interval(Timestamp(100), Timestamp(140)))
        plan = Planner(relation).plan(query)
        assert plan.strategy == "bounded-tt-window-overlap"

    def test_unbounded_relation_uses_engine_index(self):
        relation = build([0] * 50, specializations=())
        query = ValidOverlap(Scan(relation), Interval(Timestamp(100), Timestamp(140)))
        assert Planner(relation).plan(query).strategy == "engine-overlap"

    def test_unbounded_window_falls_back_inside_operator(self):
        relation = build([0] * 50)
        query = ValidOverlap(Scan(relation), Interval(Timestamp(100), FOREVER))
        plan = Planner(relation).plan(query)
        results = plan.execute()
        reference = NaiveExecutor().run(query)
        assert sorted(e.element_surrogate for e in results) == sorted(
            e.element_surrogate for e in reference
        )

    def test_work_restricted_to_window(self):
        relation = build([0] * 2_000)
        query = ValidOverlap(Scan(relation), Interval(Timestamp(5_000), Timestamp(5_100)))
        plan = Planner(relation).plan(query)
        plan.execute()
        # Window spans 100s + 10s of slack; spacing 10s -> ~12 candidates.
        assert plan.examined <= 13
        executor = NaiveExecutor()
        executor.run(query)
        assert executor.examined == 2_000


class TestEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        offsets=st.lists(st.integers(-5, 5), min_size=1, max_size=30),
        start=st.integers(-20, 320),
        width=st.integers(1, 80),
    )
    def test_matches_reference(self, offsets, start, width):
        relation = build(offsets)
        window = Interval(Timestamp(start), Timestamp(start + width))
        query = ValidOverlap(Scan(relation), window)
        plan = Planner(relation).plan(query)
        assert plan.strategy == "bounded-tt-window-overlap"
        fast = plan.execute()
        slow = NaiveExecutor().run(query)
        assert sorted(e.element_surrogate for e in fast) == sorted(
            e.element_surrogate for e in slow
        )

    @settings(max_examples=20, deadline=None)
    @given(
        offsets=st.lists(st.integers(-5, 0), min_size=1, max_size=20),
        start=st.integers(-20, 220),
        width=st.integers(1, 60),
    )
    def test_one_sided_retroactive(self, offsets, start, width):
        relation = build(offsets, specializations=("retroactive",))
        window = Interval(Timestamp(start), Timestamp(start + width))
        query = ValidOverlap(Scan(relation), window)
        plan = Planner(relation).plan(query)
        fast = plan.execute()
        slow = NaiveExecutor().run(query)
        assert sorted(e.element_surrogate for e in fast) == sorted(
            e.element_surrogate for e in slow
        )
