"""Unit tests for the algebra and the reference executor."""

import pytest

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.query import (
    BitemporalSlice,
    CurrentState,
    NaiveExecutor,
    Project,
    Rollback,
    Scan,
    Select,
    TemporalJoin,
    ValidOverlap,
    ValidTimeslice,
)
from repro.query.ast import valid_times_intersect
from repro.relation.schema import TemporalSchema, ValidTimeKind
from repro.relation.temporal_relation import TemporalRelation


@pytest.fixture
def relation():
    schema = TemporalSchema(name="temps", time_varying=("celsius",))
    clock = SimulatedWallClock(start=100)
    rel = TemporalRelation(schema, clock=clock)
    first = rel.insert("s1", Timestamp(95), {"celsius": 20.0})
    clock.advance_to(Timestamp(110))
    rel.insert("s2", Timestamp(95), {"celsius": 21.0})
    clock.advance_to(Timestamp(120))
    rel.modify(first.element_surrogate, attributes={"celsius": 19.0})
    return rel


class TestQueryClasses:
    def test_scan_returns_everything(self, relation):
        assert len(NaiveExecutor().run(Scan(relation))) == 3

    def test_current_query(self, relation):
        current = NaiveExecutor().run(CurrentState(Scan(relation)))
        assert len(current) == 2
        assert all(e.is_current for e in current)

    def test_rollback_query(self, relation):
        at_115 = NaiveExecutor().run(Rollback(Scan(relation), Timestamp(115)))
        assert sorted(e.element_surrogate for e in at_115) == [1, 2]

    def test_historical_query(self, relation):
        valid = NaiveExecutor().run(ValidTimeslice(Scan(relation), Timestamp(95)))
        assert len(valid) == 2  # the corrected element and s2
        assert {e.attributes["celsius"] for e in valid} == {19.0, 21.0}

    def test_bitemporal_query(self, relation):
        believed = NaiveExecutor().run(
            BitemporalSlice(Scan(relation), vt=Timestamp(95), tt=Timestamp(115))
        )
        assert {e.attributes["celsius"] for e in believed} == {20.0, 21.0}

    def test_overlap_query(self, relation):
        window = Interval(Timestamp(90), Timestamp(96))
        hits = NaiveExecutor().run(ValidOverlap(Scan(relation), window))
        assert len(hits) == 2


class TestSelectProject:
    def test_select(self, relation):
        warm = NaiveExecutor().run(
            Select(
                CurrentState(Scan(relation)),
                lambda e: e.attributes["celsius"] > 20,
                label="celsius>20",
            )
        )
        assert [e.attributes["celsius"] for e in warm] == [21.0]

    def test_project_rows(self, relation):
        rows = NaiveExecutor().run(
            Project(CurrentState(Scan(relation)), ["celsius", "__object__", "__vt__"])
        )
        assert {row["__object__"] for row in rows} == {"s1", "s2"}
        assert all(row["__vt__"] == Timestamp(95) for row in rows)

    def test_project_is_terminal(self, relation):
        nested = Select(
            Project(Scan(relation), ["celsius"]), lambda e: True
        )
        with pytest.raises(TypeError, match="rows, not elements"):
            NaiveExecutor().run(nested)

    def test_describe_strings(self, relation):
        query = Project(
            Select(CurrentState(Scan(relation)), lambda e: True, label="p"),
            ["celsius"],
        )
        text = query.describe()
        assert "project[celsius]" in text and "select[p]" in text and "current" in text


class TestTemporalJoin:
    def test_event_event_join_on_equal_stamp(self):
        schema = TemporalSchema(name="x", time_varying=("v",))
        clock = SimulatedWallClock(start=0)
        left = TemporalRelation(schema, clock=clock)
        right = TemporalRelation(schema, clock=SimulatedWallClock(start=0))
        left.insert("a", Timestamp(0), {"v": 1})
        right.insert("b", Timestamp(0), {"v": 2})
        right.insert("c", Timestamp(5), {"v": 3})
        pairs = NaiveExecutor().run(TemporalJoin(Scan(left), Scan(right)))
        assert len(pairs) == 1
        assert pairs[0][0].object_surrogate == "a"
        assert pairs[0][1].object_surrogate == "b"

    def test_interval_event_join(self):
        interval_schema = TemporalSchema(
            name="asg", valid_time_kind=ValidTimeKind.INTERVAL, time_varying=("p",)
        )
        event_schema = TemporalSchema(name="ev", time_varying=("v",))
        assignments = TemporalRelation(interval_schema, clock=SimulatedWallClock(start=0))
        events = TemporalRelation(event_schema, clock=SimulatedWallClock(start=0))
        assignments.insert("emp", Interval(Timestamp(0), Timestamp(10)), {"p": "x"})
        events.insert("log", Timestamp(5), {"v": 1})
        events.insert("log", Timestamp(15), {"v": 2})
        pairs = NaiveExecutor().run(TemporalJoin(Scan(assignments), Scan(events)))
        assert len(pairs) == 1
        assert pairs[0][1].attributes["v"] == 1

    def test_join_condition(self):
        schema = TemporalSchema(name="x", time_varying=("k",))
        left = TemporalRelation(schema, clock=SimulatedWallClock(start=0))
        right = TemporalRelation(schema, clock=SimulatedWallClock(start=0))
        left.insert("a", Timestamp(0), {"k": 1})
        right.insert("b", Timestamp(0), {"k": 1})
        right.insert("c", Timestamp(0), {"k": 2})
        pairs = NaiveExecutor().run(
            TemporalJoin(
                Scan(left),
                Scan(right),
                condition=lambda l, r: l.attributes["k"] == r.attributes["k"],
                label="k=k",
            )
        )
        assert len(pairs) == 1

    def test_valid_times_intersect_matrix(self):
        from repro.relation.element import Element

        def make(vt):
            return Element(1, "o", Timestamp(0), vt)

        event5 = make(Timestamp(5))
        event6 = make(Timestamp(6))
        span = make(Interval(Timestamp(0), Timestamp(6)))
        assert valid_times_intersect(event5, event5)
        assert not valid_times_intersect(event5, event6)
        assert valid_times_intersect(span, event5)
        assert not valid_times_intersect(span, event6)
        assert valid_times_intersect(span, span)


class TestExaminedCounter:
    def test_scan_counts_elements(self, relation):
        executor = NaiveExecutor()
        executor.run(ValidTimeslice(Scan(relation), Timestamp(95)))
        assert executor.examined == 3
