"""Tests for the sort-merge temporal join planner rule."""

from hypothesis import given, settings, strategies as st

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.timestamp import Timestamp
from repro.query import CurrentState, NaiveExecutor, Planner, Scan, TemporalJoin
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation


def build(name, valid_times, declared=("globally non-decreasing",), deletions=()):
    schema = TemporalSchema(name=name, time_varying=("k",), specializations=list(declared))
    clock = SimulatedWallClock(start=0)
    relation = TemporalRelation(schema, clock=clock, keep_backlog=False)
    stored = []
    for i, vt in enumerate(valid_times):
        clock.advance_to(Timestamp(10 * i))
        stored.append(relation.insert("o", Timestamp(vt), {"k": vt % 3}))
    for position in deletions:
        relation.delete(stored[position].element_surrogate)
    return relation


def join_of(left, right, condition=lambda l, r: True):
    return TemporalJoin(
        CurrentState(Scan(left)), CurrentState(Scan(right)), condition=condition
    )


def pairs_set(results):
    return sorted((a.element_surrogate, b.element_surrogate) for a, b in results)


class TestStrategySelection:
    def test_both_ordered_uses_merge(self):
        left = build("l", [0, 5, 10])
        right = build("r", [5, 10, 15])
        plan = Planner(left).plan(join_of(left, right))
        assert plan.strategy == "merge-join"

    def test_unordered_input_falls_back(self):
        left = build("l", [0, 5, 10])
        right = build("r", [5, 10, 15], declared=())
        plan = Planner(left).plan(join_of(left, right))
        assert plan.strategy == "naive"

    def test_sequential_also_qualifies(self):
        left = build("l", [0, 10, 20], declared=("globally sequential",))
        right = build("r", [10, 20, 30], declared=("globally sequential",))
        assert Planner(left).plan(join_of(left, right)).strategy == "merge-join"

    def test_raw_scan_shape_not_rewritten(self):
        left = build("l", [0, 5])
        right = build("r", [5, 10])
        raw = TemporalJoin(Scan(left), Scan(right))
        assert Planner(left).plan(raw).strategy == "naive"


class TestIntervalMergeJoin:
    @staticmethod
    def build_intervals(name, spans):
        from repro.chronos.interval import Interval
        from repro.core.taxonomy.interval_inter import IntervalGloballyNonDecreasing
        from repro.relation.schema import ValidTimeKind

        schema = TemporalSchema(
            name=name,
            valid_time_kind=ValidTimeKind.INTERVAL,
            specializations=[IntervalGloballyNonDecreasing()],
        )
        clock = SimulatedWallClock(start=0)
        relation = TemporalRelation(schema, clock=clock, keep_backlog=False)
        for i, (start, end) in enumerate(spans):
            clock.advance_to(Timestamp(10 * i))
            relation.insert("o", Interval(Timestamp(start), Timestamp(end)), {})
        return relation

    def test_strategy_selected(self):
        left = self.build_intervals("li", [(0, 5), (3, 9)])
        right = self.build_intervals("ri", [(4, 8)])
        plan = Planner(left).plan(join_of(left, right))
        assert plan.strategy == "interval-merge-join"

    def test_overlap_pairs(self):
        left = self.build_intervals("li", [(0, 5), (3, 9), (20, 30)])
        right = self.build_intervals("ri", [(4, 8), (25, 26)])
        plan = Planner(left).plan(join_of(left, right))
        results = plan.execute()
        assert len(results) == 3  # (0,5)x(4,8), (3,9)x(4,8), (20,30)x(25,26)

    def test_mixed_kinds_fall_back(self):
        left = build("le", [0, 5])
        right = self.build_intervals("ri", [(0, 5)])
        plan = Planner(left).plan(join_of(left, right))
        assert plan.strategy == "naive"

    @settings(max_examples=40, deadline=None)
    @given(
        left_spans=st.lists(
            st.tuples(st.integers(0, 5), st.integers(1, 20)), min_size=1, max_size=12
        ),
        right_spans=st.lists(
            st.tuples(st.integers(0, 5), st.integers(1, 20)), min_size=1, max_size=12
        ),
    )
    def test_sweep_equals_naive(self, left_spans, right_spans):
        def cumulative(spans):
            start, out = 0, []
            for gap, width in spans:
                start += gap
                out.append((start, start + width))
            return out

        left = self.build_intervals("li", cumulative(left_spans))
        right = self.build_intervals("ri", cumulative(right_spans))
        query = join_of(left, right)
        plan = Planner(left).plan(query)
        assert plan.strategy == "interval-merge-join"
        assert pairs_set(plan.execute()) == pairs_set(NaiveExecutor().run(query))


class TestCorrectness:
    def test_equal_stamp_runs_cross_product(self):
        left = build("l", [5, 5, 10])
        right = build("r", [5, 5, 5])
        plan = Planner(left).plan(join_of(left, right))
        results = plan.execute()
        assert len(results) == 6  # 2 x 3 on stamp 5

    def test_condition_applied(self):
        left = build("l", [0, 1, 2])
        right = build("r", [0, 1, 2])
        plan = Planner(left).plan(
            join_of(left, right, condition=lambda l, r: l.attributes["k"] == 0)
        )
        results = plan.execute()
        assert all(l.attributes["k"] == 0 for l, _ in results)

    def test_deleted_elements_excluded(self):
        left = build("l", [0, 5, 10], deletions=(1,))
        right = build("r", [5, 10])
        plan = Planner(left).plan(join_of(left, right))
        results = plan.execute()
        assert all(l.vt != Timestamp(5) for l, _ in results)

    @settings(max_examples=40, deadline=None)
    @given(
        left_steps=st.lists(st.integers(0, 3), min_size=1, max_size=15),
        right_steps=st.lists(st.integers(0, 3), min_size=1, max_size=15),
    )
    def test_merge_equals_naive(self, left_steps, right_steps):
        def cumulative(steps):
            total, out = 0, []
            for step in steps:
                total += step
                out.append(total)
            return out

        left = build("l", cumulative(left_steps))
        right = build("r", cumulative(right_steps))
        query = join_of(left, right)
        plan = Planner(left).plan(query)
        assert plan.strategy == "merge-join"
        assert pairs_set(plan.execute()) == pairs_set(NaiveExecutor().run(query))

    def test_work_savings(self):
        n = 400
        left = build("l", list(range(0, 2 * n, 2)))
        right = build("r", list(range(1, 2 * n, 2)))  # disjoint stamps
        query = join_of(left, right)
        plan = Planner(left).plan(query)
        assert plan.execute() == []
        executor = NaiveExecutor()
        executor.run(query)
        assert plan.examined == 2 * n
        assert executor.examined >= n * n
