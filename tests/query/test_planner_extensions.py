"""Tests for planner extensions: granularity-degenerate windows and
index-free engine behaviour."""

from hypothesis import given, settings, strategies as st

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.timestamp import Timestamp
from repro.core.taxonomy.event_isolated import Degenerate
from repro.query import NaiveExecutor, Planner, Scan, ValidTimeslice
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation
from repro.storage.memory import MemoryEngine


def build_granular_degenerate(count=200):
    """Samples stored within the same minute as their measurement."""
    schema = TemporalSchema(name="g", specializations=[Degenerate(granularity="minute")])
    clock = SimulatedWallClock(start=0)
    relation = TemporalRelation(schema, clock=clock, keep_backlog=False)
    for i in range(count):
        base = 60 * i
        clock.advance_to(Timestamp(base + 30))
        relation.insert("o", Timestamp(base + (i % 25)), {})
    return relation


class TestGranularDegenerate:
    def test_strategy_selected(self):
        relation = build_granular_degenerate()
        probe = relation.all_elements()[100].vt
        plan = Planner(relation).plan(ValidTimeslice(Scan(relation), probe))
        assert plan.strategy == "degenerate-tick-window"
        assert "minute" in plan.explanation

    def test_window_examines_one_tick(self):
        relation = build_granular_degenerate()
        probe = relation.all_elements()[100].vt
        plan = Planner(relation).plan(ValidTimeslice(Scan(relation), probe))
        plan.execute()
        assert plan.examined <= 1  # one store per minute in this workload

    @settings(max_examples=30, deadline=None)
    @given(position=st.integers(0, 199), offset=st.integers(-120, 120))
    def test_equivalence_with_reference(self, position, offset):
        relation = build_granular_degenerate()
        anchor = relation.all_elements()[position].vt
        probe = Timestamp(anchor.ticks + offset, "second")
        query = ValidTimeslice(Scan(relation), probe)
        plan = Planner(relation).plan(query)
        fast = plan.execute()
        slow = NaiveExecutor().run(query)
        assert sorted(e.element_surrogate for e in fast) == sorted(
            e.element_surrogate for e in slow
        )


class TestIndexFreeEngine:
    def build(self):
        schema = TemporalSchema(name="nf", time_varying=("v",))
        clock = SimulatedWallClock(start=0)
        relation = TemporalRelation(
            schema,
            clock=clock,
            engine=MemoryEngine(maintain_vt_index=False),
            keep_backlog=False,
        )
        for i in range(50):
            clock.advance_to(Timestamp(10 * i))
            relation.insert("o", Timestamp(10 * i - (i % 7)), {"v": i})
        return relation

    def test_valid_at_falls_back_to_scan(self):
        relation = self.build()
        probe = relation.all_elements()[20].vt
        matches = list(relation.engine.valid_at(probe))
        assert len(matches) >= 1
        assert all(e.valid_at(probe) for e in matches)

    def test_valid_overlapping_falls_back(self):
        from repro.chronos.interval import Interval

        relation = self.build()
        window = Interval(Timestamp(100), Timestamp(150))
        fallback = sorted(
            e.element_surrogate for e in relation.engine.valid_overlapping(window)
        )
        indexed_relation_engine = MemoryEngine()
        for element in relation.engine.scan():
            indexed_relation_engine.append(element)
        indexed = sorted(
            e.element_surrogate for e in indexed_relation_engine.valid_overlapping(window)
        )
        assert fallback == indexed

    def test_index_statistics_reflect_configuration(self):
        relation = self.build()
        stats = relation.engine.index_statistics()
        assert stats["elements"] == 50
        assert "vt_appends_in_order" not in stats
