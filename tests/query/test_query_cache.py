"""Epoch-keyed query caching: units and the cache-on/off differential.

Two halves:

* unit coverage of the machinery -- LRU entry/byte budgets and
  eviction, parse-cache memoization and its ``REPRO_RESULT_CACHE=0``
  bypass, plan-cache reuse and epoch rollover, result-cache hits that
  stay frozen, ``mutation_count()`` monotonicity on every engine;
* a Hypothesis differential: a randomized mutation/maintenance/query
  script runs against flat, unindexed, segmented, tiered, and sharded
  topologies, and at every query point the cache-enabled answer (tiny
  budgets, constant eviction pressure) must be byte-identical -- via
  the server's canonical codec -- to the same query under
  ``REPRO_RESULT_CACHE=0``.  Vacuum engine swaps, segment compaction,
  shard rebalancing, and out-of-band ``extend()`` straight into the
  engine all interleave: every one must roll the epoch.
"""

import json
import os
import tempfile
from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chronos.clock import LogicalClock, SimulatedWallClock
from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.query import Planner, Scan, ValidOverlap, ValidTimeslice, tql
from repro.query import cache as qcache
from repro.query.ast import CurrentState, Rollback
from repro.relation.element import Element
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation
from repro.server.protocol import elements_to_json
from repro.storage.logfile import LogFileEngine
from repro.storage.memory import MemoryEngine
from repro.storage.sharded import HashPartitioner, ShardedEngine
from repro.storage.single_stamp import SingleStampEngine
from repro.storage.sqlite_backend import SQLiteEngine
from repro.storage.vacuum import vacuum_relation
from tests.strategies import OBJECTS, SMALL_TICKS

CLOCK_START = 1_000


@contextmanager
def cache_env(value):
    """Temporarily pin REPRO_RESULT_CACHE (a budget, '0', or None)."""
    old = os.environ.get("REPRO_RESULT_CACHE")
    if value is None:
        os.environ.pop("REPRO_RESULT_CACHE", None)
    else:
        os.environ["REPRO_RESULT_CACHE"] = value
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_RESULT_CACHE", None)
        else:
            os.environ["REPRO_RESULT_CACHE"] = old


def make_relation(engine=None, specializations=()):
    schema = TemporalSchema(
        name="cached",
        time_varying=("reading",),
        specializations=list(specializations),
    )
    return TemporalRelation(
        schema, clock=LogicalClock(start=CLOCK_START), engine=engine
    )


def fill(relation, count=12):
    relation.append_many(
        [(f"o{i % 3}", Timestamp(i * 5), {"reading": i}) for i in range(count)]
    )
    return relation


# -- the LRU ------------------------------------------------------------------------


class TestLRUCache:
    def test_entry_budget_evicts_oldest(self):
        cache = qcache.LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = qcache.LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)  # evicts "b", the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_byte_budget_evicts_under_pressure(self):
        cache = qcache.LRUCache(100, max_bytes=100)
        cache.put("a", "x", nbytes=40)
        cache.put("b", "y", nbytes=40)
        cache.put("c", "z", nbytes=40)  # 120 > 100: "a" must go
        assert cache.get("a") is None
        assert cache.get("b") == "y"
        assert cache.bytes == 80

    def test_oversized_value_is_rejected_not_cached(self):
        cache = qcache.LRUCache(100, max_bytes=100)
        cache.put("small", "s", nbytes=10)
        cache.put("huge", "h", nbytes=1_000)
        assert cache.get("huge") is None
        assert cache.get("small") == "s"  # untouched by the rejection

    def test_replacement_updates_byte_accounting(self):
        cache = qcache.LRUCache(10, max_bytes=100)
        cache.put("a", "old", nbytes=60)
        cache.put("a", "new", nbytes=20)
        assert cache.bytes == 20
        assert cache.get("a") == "new"


# -- parse cache --------------------------------------------------------------------


class TestParseCache:
    def test_repeated_statements_share_the_instance(self):
        with cache_env("4"):
            qcache.parse_cache.clear()
            first = tql.parse("SELECT * FROM cached VALID AT 10")
            second = tql.parse("SELECT * FROM cached VALID AT 10")
            assert first is second

    def test_kill_switch_bypasses_memoization(self):
        with cache_env("0"):
            qcache.parse_cache.clear()
            first = tql.parse("SELECT * FROM cached VALID AT 11")
            second = tql.parse("SELECT * FROM cached VALID AT 11")
            assert first is not second
            assert len(qcache.parse_cache) == 0

    def test_parse_errors_are_not_cached(self):
        with cache_env("4"):
            qcache.parse_cache.clear()
            for _ in range(2):
                try:
                    tql.parse("SELECT broken FROM")
                except tql.TQLError:
                    pass
            assert len(qcache.parse_cache) == 0


# -- plan + result layers -----------------------------------------------------------


class TestPlanCache:
    def test_same_epoch_reuses_the_plan_object(self):
        with cache_env("4"):
            relation = fill(make_relation())
            query = ValidTimeslice(Scan(relation), Timestamp(10))
            first = Planner(relation).plan(query)
            second = Planner(relation).plan(query)
            assert first is second

    def test_mutation_rolls_the_epoch_and_replans(self):
        with cache_env("4"):
            relation = fill(make_relation())
            query = ValidTimeslice(Scan(relation), Timestamp(10))
            first = Planner(relation).plan(query)
            relation.insert("o9", Timestamp(99), {"reading": 9})
            second = Planner(relation).plan(query)
            assert first is not second

    def test_kill_switch_never_caches_plans(self):
        with cache_env("0"):
            relation = fill(make_relation())
            assert relation.query_cache is None
            query = ValidTimeslice(Scan(relation), Timestamp(10))
            assert Planner(relation).plan(query) is not Planner(relation).plan(query)

    def test_foreign_relation_scan_is_uncacheable(self):
        with cache_env("4"):
            relation = fill(make_relation())
            other = fill(make_relation())
            query = ValidTimeslice(Scan(other), Timestamp(10))
            assert qcache.fingerprint(query, relation) is None


class TestResultCache:
    def test_hit_returns_equal_results_and_marks_the_plan(self):
        with cache_env("4"):
            relation = fill(make_relation())
            query = ValidTimeslice(Scan(relation), Timestamp(10))
            first = Planner(relation).plan(query).execute()
            plan = Planner(relation).plan(query)
            second = plan.execute()
            assert first == second
            assert plan.result_cache_epoch is not None

    def test_hits_hand_back_a_fresh_list(self):
        with cache_env("4"):
            relation = fill(make_relation())
            query = ValidTimeslice(Scan(relation), Timestamp(10))
            first = Planner(relation).plan(query).execute()
            assert first
            first.clear()  # a caller mangling its copy...
            second = Planner(relation).plan(query).execute()
            assert second  # ...must not mangle the cached answer

    def test_epoch_rollover_recomputes(self):
        with cache_env("4"):
            relation = fill(make_relation())
            query = ValidTimeslice(Scan(relation), Timestamp(10))
            before = Planner(relation).plan(query).execute()
            Planner(relation).plan(query).execute()
            relation.insert("oX", Timestamp(10), {"reading": 77})
            plan = Planner(relation).plan(query)
            after = plan.execute()
            assert plan.result_cache_epoch is None  # honest miss
            assert len(after) == len(before) + 1

    def test_result_layer_off_by_default_but_plan_layer_on(self):
        with cache_env(None):
            relation = fill(make_relation())
            cache = relation.query_cache
            assert cache is not None
            assert cache.results() is None
            query = ValidTimeslice(Scan(relation), Timestamp(10))
            assert Planner(relation).plan(query) is Planner(relation).plan(query)

    def test_statistics_reports_layers(self):
        with cache_env("4"):
            relation = fill(make_relation())
            query = ValidTimeslice(Scan(relation), Timestamp(10))
            Planner(relation).plan(query).execute()
            Planner(relation).plan(query).execute()
            stats = relation.query_cache.statistics()
            assert stats["plan_hits"] >= 1
            assert stats["result_hits"] >= 1
            assert stats["result_bytes"] > 0

    def test_explain_names_the_cache_hit_before_chosen(self):
        with cache_env("4"):
            relation = fill(make_relation())
            statement = "SELECT * FROM cached VALID AT 10"
            relation.explain(statement)
            report = relation.explain(statement)
            cached_lines = [
                line for line in report.decisions if "result cache" in line
            ]
            assert cached_lines, report.decisions
            assert report.decisions[-1].startswith("chosen:")


# -- satellite: every engine's mutation counter -------------------------------------


class TestMutationCount:
    def _exercise(self, relation):
        engine = relation.engine
        seen = [engine.mutation_count()]

        def advanced():
            seen.append(engine.mutation_count())
            assert seen[-1] > seen[-2], "mutation_count must advance"

        relation.insert("alpha", Timestamp(5), {"reading": 1})
        advanced()
        relation.append_many(
            [("beta", Timestamp(7), {"reading": 2}), ("gamma", Timestamp(9), {})]
        )
        advanced()
        victim = relation.current()[0]
        relation.delete(victim.element_surrogate)
        advanced()

    def test_memory(self):
        self._exercise(make_relation(MemoryEngine()))

    def test_segmented_memory(self):
        self._exercise(make_relation(MemoryEngine(segment_size=2)))

    def test_sharded(self):
        self._exercise(make_relation(ShardedEngine(shard_count=3)))

    def test_logfile(self, tmp_path):
        engine = LogFileEngine(str(tmp_path / "wal.log"))
        try:
            self._exercise(make_relation(engine))
        finally:
            engine.close()

    def test_sqlite(self, tmp_path):
        engine = SQLiteEngine(str(tmp_path / "rel.db"))
        try:
            self._exercise(make_relation(engine))
        finally:
            engine.close()

    def test_single_stamp_counts_deletes_len_does_not(self):
        schema = TemporalSchema(name="d", specializations=["degenerate"])
        clock = SimulatedWallClock(start=0)
        relation = TemporalRelation(schema, clock=clock, engine=SingleStampEngine())
        for i in range(3):
            clock.advance_to(Timestamp(10 * i))
            relation.insert("o", Timestamp(10 * i), {})
        engine = relation.engine
        before_len, before_count = len(engine), engine.mutation_count()
        clock.advance_to(Timestamp(100))
        relation.delete(relation.current()[0].element_surrogate)
        assert len(engine) == before_len  # deletes patch in place
        assert engine.mutation_count() > before_count


# -- the cache-on/cache-off differential --------------------------------------------


def _canonical(elements):
    return json.dumps(elements_to_json(elements), sort_keys=True)


def _out_of_band_extend(relation, tick):
    """A write the relation never sees: straight into the engine.

    ``relation.version`` stays put, so only the engine's mutation
    counter can save the cache from serving the pre-extend answer.
    """
    element = Element(
        element_surrogate=relation._surrogates.fresh(),
        object_surrogate="smuggled",
        tt_start=relation.clock.now(),
        vt=Timestamp(tick),
        time_varying={"reading": -1},
    )
    relation.engine.extend([element])


QUERY_OPS = ("timeslice", "overlap", "rollback", "current", "tql")


@st.composite
def cache_workload(draw, min_ops=6, max_ops=20):
    op = st.one_of(
        st.tuples(st.just("insert"), OBJECTS, SMALL_TICKS, st.integers(1, 12)),
        st.tuples(
            st.just("batch"),
            st.lists(
                st.tuples(OBJECTS, SMALL_TICKS, st.integers(1, 12)),
                min_size=1,
                max_size=4,
            ),
        ),
        st.tuples(st.just("delete"), st.integers(0, 63)),
        st.tuples(st.just("vacuum"), st.integers(0, 80)),
        st.tuples(st.just("compact")),
        st.tuples(st.just("rebalance"), st.integers(0, 1_000)),
        st.tuples(st.just("extend"), SMALL_TICKS),
        st.tuples(st.just("query"), st.sampled_from(QUERY_OPS), SMALL_TICKS),
    )
    return draw(st.lists(op, min_size=min_ops, max_size=max_ops))


def _run_query(relation, which, tick):
    if which == "tql":
        return _canonical(
            tql.execute(f"SELECT * FROM cached VALID AT {tick}", relation)
        )
    if which == "timeslice":
        node = ValidTimeslice(Scan(relation), Timestamp(tick))
    elif which == "overlap":
        node = ValidOverlap(
            Scan(relation), Interval(Timestamp(tick), Timestamp(tick + 10))
        )
    elif which == "rollback":
        node = Rollback(Scan(relation), Timestamp(CLOCK_START + tick, "microsecond"))
    else:
        node = CurrentState(Scan(relation))
    return _canonical(Planner(relation).plan(node).execute())


def run_cache_differential(relation, ops):
    """Every query answers twice: tiny hot caches vs the kill switch.

    The cached run uses budgets small enough (4 entries) that eviction
    pressure is constant; the uncached run is today's code path.  The
    two must agree byte-for-byte at every step.
    """
    for op in ops:
        kind = op[0]
        if kind == "insert":
            relation.insert(op[1], Timestamp(op[2]), {"reading": op[3]})
        elif kind == "batch":
            relation.append_many(
                [(obj, Timestamp(tick), {"reading": length}) for obj, tick, length in op[1]]
            )
        elif kind == "delete":
            # Smuggled rows bypassed the backlog: not deletable there.
            live = [
                e for e in relation.current() if e.object_surrogate != "smuggled"
            ]
            if live:
                relation.delete(live[op[1] % len(live)].element_surrogate)
        elif kind == "vacuum":
            vacuum_relation(relation, Timestamp(op[1]))
        elif kind == "compact":
            engine = relation.engine
            shards = (
                engine.shards if isinstance(engine, ShardedEngine) else [engine]
            )
            for shard in shards:
                index = getattr(shard, "transaction_index", None)
                if index is not None:
                    index.store.compact()
        elif kind == "rebalance":
            engine = relation.engine
            if isinstance(engine, ShardedEngine) and isinstance(
                engine.partitioner, HashPartitioner
            ):
                engine.rebalance(
                    op[1] % engine.partitioner.buckets,
                    op[1] % len(engine.shards),
                )
        elif kind == "extend":
            _out_of_band_extend(relation, op[1])
        elif kind == "query":
            with cache_env("4"):
                cached = _run_query(relation, op[1], op[2])
            with cache_env("0"):
                uncached = _run_query(relation, op[1], op[2])
            assert cached == uncached, (
                f"cache served a divergent {op[1]} answer:\n"
                f"  cached:   {cached}\n"
                f"  uncached: {uncached}"
            )
        else:  # pragma: no cover - strategy and runner must stay in sync
            raise AssertionError(f"unknown workload op {op!r}")
    with cache_env("4"):
        final_cached = _run_query(relation, "current", 0)
    with cache_env("0"):
        assert final_cached == _run_query(relation, "current", 0)


class TestCacheDifferential:
    @settings(max_examples=25, deadline=None)
    @given(ops=cache_workload())
    def test_flat_memory(self, ops):
        run_cache_differential(make_relation(MemoryEngine()), ops)

    @settings(max_examples=15, deadline=None)
    @given(ops=cache_workload())
    def test_memory_without_vt_index(self, ops):
        run_cache_differential(
            make_relation(MemoryEngine(maintain_vt_index=False)), ops
        )

    @settings(max_examples=15, deadline=None)
    @given(ops=cache_workload())
    def test_small_segments(self, ops):
        run_cache_differential(make_relation(MemoryEngine(segment_size=4)), ops)

    @settings(max_examples=10, deadline=None)
    @given(ops=cache_workload())
    def test_tiered_cold_storage(self, ops):
        with tempfile.TemporaryDirectory() as tier_dir:
            engine = MemoryEngine(segment_size=4, tier_dir=tier_dir)
            try:
                run_cache_differential(make_relation(engine), ops)
            finally:
                engine.close()

    @settings(max_examples=10, deadline=None)
    @given(ops=cache_workload())
    def test_hash_sharded_memory(self, ops):
        run_cache_differential(make_relation(ShardedEngine(shard_count=3)), ops)
