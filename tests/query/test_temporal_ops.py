"""Unit and property tests for coalescing and temporal aggregation."""

import pytest
from hypothesis import given, strategies as st

from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.query.temporal_ops import (
    aggregate_over_time,
    coalesce,
    count_over_time,
    timeslice_series,
    valid_extent,
)
from repro.relation.element import Element


def interval_element(surrogate, start, end, who="o", tt=None, **varying):
    return Element(
        element_surrogate=surrogate,
        object_surrogate=who,
        tt_start=Timestamp(tt if tt is not None else surrogate),
        vt=Interval(Timestamp(start), Timestamp(end)),
        time_varying=varying,
    )


class TestCoalesce:
    def test_merges_adjacent_equal_values(self):
        elements = [
            interval_element(1, 0, 5, project="x"),
            interval_element(2, 5, 9, project="x"),
        ]
        facts = coalesce(elements)
        assert len(facts) == 1
        assert facts[0].intervals == (Interval(Timestamp(0), Timestamp(9)),)
        assert facts[0].attributes == {"project": "x"}

    def test_keeps_distinct_values_apart(self):
        elements = [
            interval_element(1, 0, 5, project="x"),
            interval_element(2, 5, 9, project="y"),
        ]
        facts = coalesce(elements)
        assert len(facts) == 2

    def test_gap_produces_two_intervals_one_fact(self):
        elements = [
            interval_element(1, 0, 3, project="x"),
            interval_element(2, 7, 9, project="x"),
        ]
        facts = coalesce(elements)
        assert len(facts) == 1
        assert len(facts[0].intervals) == 2

    def test_objects_not_merged(self):
        elements = [
            interval_element(1, 0, 5, who="a", project="x"),
            interval_element(2, 5, 9, who="b", project="x"),
        ]
        assert len(coalesce(elements)) == 2

    def test_event_elements_coalesce_adjacent_ticks(self):
        events = [
            Element(1, "o", Timestamp(1), Timestamp(5), time_varying={"v": 1}),
            Element(2, "o", Timestamp(2), Timestamp(6), time_varying={"v": 1}),
        ]
        facts = coalesce(events)
        assert len(facts) == 1
        assert facts[0].intervals == (Interval(Timestamp(5), Timestamp(7)),)

    @given(
        st.lists(
            st.tuples(st.integers(0, 40), st.integers(1, 10), st.sampled_from("xy")),
            min_size=1,
            max_size=12,
        )
    )
    def test_coalesced_periods_cover_exactly_the_inputs(self, rows):
        elements = [
            interval_element(i + 1, start, start + width, project=value)
            for i, (start, width, value) in enumerate(rows)
        ]
        facts = coalesce(elements)
        for probe in range(-1, 55):
            point = Timestamp(probe)
            covered = {
                value
                for fact in facts
                for value in [fact.attributes["project"]]
                if fact.period.contains_point(point)
            }
            expected = {
                e.time_varying["project"] for e in elements if e.vt.contains_point(point)
            }
            assert covered == expected


class TestCountOverTime:
    def test_step_function(self):
        elements = [
            interval_element(1, 0, 10),
            interval_element(2, 5, 15),
        ]
        segments = count_over_time(elements)
        values = [(s.interval.start.ticks, s.interval.end.ticks, s.value) for s in segments]
        micro = 1  # coordinates are in microseconds
        assert [(a // 10**6, b // 10**6, v) for a, b, v in values] == [
            (0, 5, 1),
            (5, 10, 2),
            (10, 15, 1),
        ]

    def test_deleted_elements_ignored(self):
        kept = interval_element(1, 0, 10)
        dropped = interval_element(2, 5, 15).closed(Timestamp(100))
        segments = count_over_time([kept, dropped])
        assert all(s.value == 1 for s in segments)

    def test_empty(self):
        assert count_over_time([]) == []

    def test_adjacent_equal_segments_merge(self):
        elements = [interval_element(1, 0, 5), interval_element(2, 5, 10)]
        segments = count_over_time(elements)
        assert len(segments) == 1
        assert segments[0].value == 1


class TestAggregates:
    ELEMENTS = [
        interval_element(1, 0, 10, amount=10),
        interval_element(2, 5, 15, amount=30),
    ]

    def test_sum(self):
        segments = aggregate_over_time(self.ELEMENTS, "sum", "amount")
        assert [s.value for s in segments] == [10, 40, 30]

    def test_min_max_avg(self):
        # Adjacent equal-valued segments merge, so min yields [0,10)->10,
        # [10,15)->30 and max yields [0,5)->10, [5,15)->30.
        assert [s.value for s in aggregate_over_time(self.ELEMENTS, "min", "amount")] == [10, 30]
        assert [s.value for s in aggregate_over_time(self.ELEMENTS, "max", "amount")] == [10, 30]
        assert [s.value for s in aggregate_over_time(self.ELEMENTS, "avg", "amount")] == [10, 20, 30]

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            aggregate_over_time(self.ELEMENTS, "median", "amount")
        with pytest.raises(ValueError, match="requires an attribute"):
            aggregate_over_time(self.ELEMENTS, "sum")

    def test_non_numeric_values_yield_none(self):
        elements = [interval_element(1, 0, 5, amount="lots")]
        segments = aggregate_over_time(elements, "sum", "amount")
        assert [s.value for s in segments] == [None]


class TestSeriesAndExtent:
    def test_timeslice_series(self):
        elements = [interval_element(1, 0, 10), interval_element(2, 5, 15)]
        series = timeslice_series(elements, [Timestamp(2), Timestamp(7), Timestamp(20)])
        assert [len(found) for _, found in series] == [1, 2, 0]

    def test_valid_extent(self):
        elements = [
            interval_element(1, 0, 5, who="a"),
            interval_element(2, 7, 9, who="a"),
            interval_element(3, 0, 9, who="b"),
        ]
        extents = valid_extent(elements)
        assert len(extents["a"]) == 2
        assert len(extents["b"]) == 1
