"""Tests for the TQL language: parsing, compilation, execution."""

import pytest

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.duration import Duration
from repro.chronos.timestamp import Timestamp
from repro.query import tql
from repro.query.executor import NaiveExecutor
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation


@pytest.fixture
def relation():
    schema = TemporalSchema(
        name="temps",
        time_invariant=("sensor",),
        time_varying=("celsius",),
        specializations=["retroactive"],
    )
    clock = SimulatedWallClock(start=1_000)
    rel = TemporalRelation(schema, clock=clock)
    first = rel.insert("s1", Timestamp(940), {"sensor": "s1", "celsius": 21})
    clock.advance(Duration(60))
    rel.insert("s2", Timestamp(960), {"sensor": "s2", "celsius": 25})
    clock.advance(Duration(60))
    rel.modify(first.element_surrogate, attributes={"celsius": 22})
    return rel


class TestParsing:
    def test_minimal(self):
        parsed = tql.parse("SELECT * FROM temps")
        assert parsed.relation_name == "temps"
        assert parsed.attributes is None

    def test_attribute_list_and_specials(self):
        parsed = tql.parse("SELECT sensor, vt, tt, object FROM temps")
        assert parsed.attributes == ("sensor", "__vt__", "__tt_start__", "__object__")

    def test_time_units(self):
        parsed = tql.parse("SELECT * FROM temps VALID AT 3 h")
        assert parsed.valid_at == Timestamp(3, "hour")
        bare = tql.parse("SELECT * FROM temps VALID AT 940")
        assert bare.valid_at == Timestamp(940, "second")

    def test_window(self):
        parsed = tql.parse("SELECT * FROM temps VALID OVERLAPS [900s, 970s)")
        assert parsed.valid_window.start == Timestamp(900)
        assert parsed.valid_window.end == Timestamp(970)

    def test_where_conditions(self):
        parsed = tql.parse(
            "SELECT * FROM temps WHERE celsius >= 21 AND sensor = 's1'"
        )
        assert len(parsed.conditions) == 2
        assert parsed.conditions[1].value == "s1"

    def test_case_insensitive_keywords(self):
        parsed = tql.parse("select * from temps valid at 940s as of 1100s")
        assert parsed.valid_at is not None and parsed.as_of is not None

    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT FROM temps",
            "SELECT * temps",
            "SELECT * FROM temps VALID 940s",
            "SELECT * FROM temps VALID OVERLAPS [970s, 900s)",
            "SELECT * FROM temps VALID OVERLAPS [900s, 970s]",
            "SELECT * FROM temps WHERE celsius",
            "SELECT * FROM temps CURRENT AS OF 5s",
            "SELECT * FROM temps VALID AT 1s VALID OVERLAPS [0s, 2s)",
            "SELECT * FROM temps EXTRA",
            "SELECT * FROM temps WHERE = 5",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(tql.TQLError):
            tql.parse(bad)


class TestExecution:
    def test_current_query_default(self, relation):
        rows = tql.execute("SELECT celsius FROM temps", relation)
        assert sorted(row["celsius"] for row in rows) == [22, 25]

    def test_valid_at(self, relation):
        rows = tql.execute("SELECT celsius FROM temps VALID AT 940s", relation)
        assert [row["celsius"] for row in rows] == [22]

    def test_as_of(self, relation):
        rows = tql.execute("SELECT celsius FROM temps AS OF 1000s", relation)
        assert [row["celsius"] for row in rows] == [21]

    def test_bitemporal(self, relation):
        rows = tql.execute(
            "SELECT celsius FROM temps VALID AT 940s AS OF 1000s", relation
        )
        assert [row["celsius"] for row in rows] == [21]

    def test_overlap_window(self, relation):
        elements = tql.execute(
            "SELECT * FROM temps VALID OVERLAPS [950s, 970s)", relation
        )
        assert [e.attributes["celsius"] for e in elements] == [25]

    def test_where(self, relation):
        rows = tql.execute(
            "SELECT sensor FROM temps WHERE celsius > 22", relation
        )
        assert rows == [{"sensor": "s2"}]

    def test_star_returns_elements(self, relation):
        elements = tql.execute("SELECT * FROM temps", relation)
        assert all(hasattr(e, "element_surrogate") for e in elements)

    def test_special_columns(self, relation):
        rows = tql.execute("SELECT object, vt FROM temps VALID AT 960s", relation)
        assert rows == [{"__object__": "s2", "__vt__": Timestamp(960)}]

    def test_planner_and_naive_agree(self, relation):
        for statement in (
            "SELECT * FROM temps",
            "SELECT * FROM temps VALID AT 940s",
            "SELECT * FROM temps AS OF 1060s",
            "SELECT * FROM temps WHERE celsius >= 22",
        ):
            fast = tql.execute(statement, relation, use_planner=True)
            slow = tql.execute(statement, relation, use_planner=False)
            assert [e.element_surrogate for e in fast] == [
                e.element_surrogate for e in slow
            ], statement

    def test_missing_attribute_in_where_is_false(self, relation):
        rows = tql.execute("SELECT * FROM temps WHERE nonexistent = 1", relation)
        assert rows == []

    def test_compile_produces_expected_tree(self, relation):
        parsed = tql.parse("SELECT celsius FROM temps VALID AT 940s WHERE celsius > 0")
        node = tql.compile_query(parsed, relation)
        text = node.describe()
        assert "project[celsius]" in text
        assert "timeslice" in text

    def test_count_star(self, relation):
        assert tql.execute("SELECT COUNT(*) FROM temps", relation) == [{"count": 2}]
        assert tql.execute(
            "SELECT COUNT(*) FROM temps WHERE celsius > 22", relation
        ) == [{"count": 1}]
        assert tql.execute(
            "SELECT COUNT(*) FROM temps VALID AT 940s", relation
        ) == [{"count": 1}]

    def test_count_requires_parenthesized_star(self):
        with pytest.raises(tql.TQLError, match="COUNT"):
            tql.parse("SELECT COUNT FROM temps")
        with pytest.raises(tql.TQLError, match="COUNT"):
            tql.parse("SELECT COUNT(x) FROM temps")

    def test_explain_reports_strategy(self, relation):
        # Four stored elements sit below the planner's small-relation
        # threshold, so the declared bounded window yields to a scan.
        text = tql.explain("SELECT celsius FROM temps VALID AT 940s", relation)
        assert "strategy  : small-relation-scan" in text
        assert "small-relation" in text
        assert "timeslice" in text

    def test_explain_rollback(self, relation):
        text = tql.explain("SELECT * FROM temps AS OF 1000s", relation)
        assert "rollback-prefix" in text

    def test_compiled_tree_matches_execute(self, relation):
        statement = "SELECT * FROM temps VALID AT 940s"
        parsed = tql.parse(statement)
        node = tql.compile_query(parsed, relation)
        reference = NaiveExecutor().run(node)
        fast = tql.execute(statement, relation)
        assert [e.element_surrogate for e in fast] == [
            e.element_surrogate for e in reference
        ]


class TestDatabase:
    def test_catalog_roundtrip(self):
        from repro.database import TemporalDatabase
        from repro.relation.errors import SchemaError

        db = TemporalDatabase()
        schema = TemporalSchema(name="events", time_varying=("v",))
        relation = db.create_relation(schema)
        relation.insert("o", Timestamp(0), {"v": 1})
        assert db.names() == ["events"]
        assert "events" in db
        assert len(db.execute("SELECT * FROM events")) == 1
        with pytest.raises(SchemaError):
            db.create_relation(schema)
        db.drop_relation("events")
        with pytest.raises(SchemaError):
            db.relation("events")

    def test_shared_clock_orders_transactions_globally(self):
        from repro.database import TemporalDatabase

        db = TemporalDatabase()
        first = db.create_relation(TemporalSchema(name="a", time_varying=("v",)))
        second = db.create_relation(TemporalSchema(name="b", time_varying=("v",)))
        e1 = first.insert("x", Timestamp(0), {"v": 1})
        e2 = second.insert("y", Timestamp(0), {"v": 2})
        assert e1.tt_start < e2.tt_start

    def test_unknown_relation_lists_known(self):
        from repro.database import TemporalDatabase
        from repro.relation.errors import SchemaError

        db = TemporalDatabase()
        db.create_relation(TemporalSchema(name="known"))
        with pytest.raises(SchemaError, match="known"):
            db.execute("SELECT * FROM mystery")

    def test_design_report(self):
        from repro.database import TemporalDatabase
        from repro.workloads import generate_monitoring

        db = TemporalDatabase()
        db.attach(generate_monitoring(sensors=2, samples_per_sensor=20).relation)
        db.create_relation(TemporalSchema(name="empty"))
        report = db.design_report()
        assert "plant_temperatures" in report
        assert "empty" in report and "nothing to infer" in report
