"""EXPLAIN coverage: one query per planner strategy.

Each test drives ``TemporalRelation.explain`` through a relation shaped
to trigger exactly one strategy and asserts the report names it, logs
at least one pruning decision, and carries a timed span tree (compile
-- for TQL input -- plan, execute, and the operator span).
"""

from repro.chronos.clock import ManualTimer, SimulatedWallClock
from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.core.taxonomy.event_isolated import Degenerate
from repro.core.taxonomy.interval_inter import IntervalGloballyNonDecreasing
from repro.query import (
    BitemporalSlice,
    CurrentState,
    Rollback,
    Scan,
    TemporalJoin,
    ValidOverlap,
    ValidTimeslice,
)
from repro.query.planner import Planner
from repro.relation.schema import TemporalSchema, ValidTimeKind
from repro.relation.temporal_relation import TemporalRelation
from repro.storage.columnar import columnar_enabled
from repro.storage.memory import MemoryEngine


def build_events(specializations, offsets, name="r"):
    schema = TemporalSchema(name=name, specializations=list(specializations))
    clock = SimulatedWallClock(start=0)
    relation = TemporalRelation(schema, clock=clock, keep_backlog=False)
    for i, offset in enumerate(offsets):
        clock.advance_to(Timestamp(10 * i))
        relation.insert("o", Timestamp(10 * i + offset), {})
    return relation


def build_intervals(name, spans, specializations):
    schema = TemporalSchema(
        name=name,
        valid_time_kind=ValidTimeKind.INTERVAL,
        specializations=specializations,
    )
    clock = SimulatedWallClock(start=0)
    relation = TemporalRelation(schema, clock=clock, keep_backlog=False)
    for i, (start, end) in enumerate(spans):
        clock.advance_to(Timestamp(10 * i))
        relation.insert("o", Interval(Timestamp(start), Timestamp(end)), {})
    return relation


def assert_report_shape(report, strategy, min_spans=3):
    assert report.strategy == strategy
    assert report.decisions, "the planner should log its decision path"
    assert report.decisions[-1].startswith(f"chosen: {strategy}")
    assert report.trace.span_count() >= min_spans
    names = [span.name for span in report.trace.all_spans()]
    assert "plan" in names
    assert "execute" in names
    assert f"operator:{strategy}" in names
    for span in report.trace.all_spans():
        assert span.duration_seconds >= 0.0


class TestTimesliceStrategies:
    def test_degenerate_rollback(self):
        relation = build_events(["degenerate"], [0] * 30)
        report = relation.explain(ValidTimeslice(Scan(relation), Timestamp(100)))
        assert_report_shape(report, "degenerate-rollback")
        assert any("degenerate" in decision for decision in report.decisions)

    def test_degenerate_tick_window(self):
        schema = TemporalSchema(
            name="g", specializations=[Degenerate(granularity="minute")]
        )
        clock = SimulatedWallClock(start=0)
        relation = TemporalRelation(schema, clock=clock, keep_backlog=False)
        for i in range(60):
            base = 60 * i
            clock.advance_to(Timestamp(base + 30))
            relation.insert("o", Timestamp(base + (i % 25)), {})
        probe = relation.all_elements()[30].vt
        report = relation.explain(ValidTimeslice(Scan(relation), probe))
        assert_report_shape(report, "degenerate-tick-window")

    def test_monotone_binary_search(self):
        relation = build_events(["globally non-decreasing"], [3] * 30)
        report = relation.explain(ValidTimeslice(Scan(relation), Timestamp(103)))
        assert_report_shape(report, "monotone-binary-search")

    def test_monotone_binary_search_descending(self):
        schema = TemporalSchema(name="arch", specializations=["globally non-increasing"])
        clock = SimulatedWallClock(start=0)
        relation = TemporalRelation(schema, clock=clock, keep_backlog=False)
        for i in range(30):
            clock.advance_to(Timestamp(10 * i))
            relation.insert("dig", Timestamp(-10 * i), {})
        report = relation.explain(ValidTimeslice(Scan(relation), Timestamp(-100)))
        assert_report_shape(report, "monotone-binary-search-descending")

    def test_sequential_interval_search(self):
        from repro.core.taxonomy import IntervalGloballySequential

        relation = build_intervals(
            "weeks",
            [(week * 10, week * 10 + 7) for week in range(20)],
            [IntervalGloballySequential()],
        )
        report = relation.explain(ValidTimeslice(Scan(relation), Timestamp(55)))
        assert_report_shape(report, "sequential-interval-search")
        assert report.returned == 1

    def test_bounded_tt_window(self):
        relation = build_events(
            ["strongly bounded(5s, 5s)"], [(-1) ** i * 4 for i in range(30)]
        )
        report = relation.explain(ValidTimeslice(Scan(relation), Timestamp(100)))
        assert_report_shape(report, "bounded-tt-window")
        assert any("window" in decision for decision in report.decisions)

    def test_engine_index_fallback(self):
        relation = build_events([], [7, -20, 3, 40, -11])
        report = relation.explain(ValidTimeslice(Scan(relation), Timestamp(3)))
        assert_report_shape(report, "engine-index")


class TestOtherShapes:
    def test_rollback_prefix(self):
        relation = build_events([], [0] * 10)
        report = relation.explain(Rollback(Scan(relation), Timestamp(50)))
        assert_report_shape(report, "rollback-prefix")

    def test_bitemporal_prefix(self):
        relation = build_events([], [0] * 10)
        report = relation.explain(
            BitemporalSlice(Scan(relation), vt=Timestamp(50), tt=Timestamp(50))
        )
        assert_report_shape(report, "bitemporal-prefix")

    def test_current_state(self):
        relation = build_events([], [0] * 10)
        report = relation.explain(CurrentState(Scan(relation)))
        assert_report_shape(report, "current")

    def test_bounded_tt_window_overlap(self):
        relation = build_events(["strongly bounded(5s, 5s)"], [0] * 30)
        report = relation.explain(
            ValidOverlap(Scan(relation), Interval(Timestamp(100), Timestamp(140)))
        )
        assert_report_shape(report, "bounded-tt-window-overlap")

    def test_engine_overlap(self):
        relation = build_events([], [0] * 30)
        report = relation.explain(
            ValidOverlap(Scan(relation), Interval(Timestamp(100), Timestamp(140)))
        )
        assert_report_shape(report, "engine-overlap")

    def test_naive_fallback(self):
        relation = build_events([], [0])
        report = relation.explain(ValidTimeslice(CurrentState(Scan(relation)), Timestamp(0)))
        assert_report_shape(report, "naive")
        assert any("no rule matched" in d or "naive" in d for d in report.decisions)


class TestJoinStrategies:
    @staticmethod
    def join_of(left, right):
        return TemporalJoin(
            CurrentState(Scan(left)),
            CurrentState(Scan(right)),
            condition=lambda a, b: True,
        )

    def test_merge_join(self):
        left = build_events(["globally non-decreasing"], [3] * 5, name="l")
        right = build_events(["globally non-decreasing"], [3] * 5, name="r")
        report = left.explain(self.join_of(left, right))
        assert_report_shape(report, "merge-join")

    def test_interval_merge_join(self):
        left = build_intervals("li", [(0, 5), (3, 9)], [IntervalGloballyNonDecreasing()])
        right = build_intervals("ri", [(4, 8)], [IntervalGloballyNonDecreasing()])
        report = left.explain(self.join_of(left, right))
        assert_report_shape(report, "interval-merge-join")


def build_segmented(specializations, offsets, segment_size=8, name="r", vt_index=True):
    """Events at tt = 10*i with a small segment size (sealed segments
    appear at realistic test sizes)."""
    schema = TemporalSchema(name=name, specializations=list(specializations))
    clock = SimulatedWallClock(start=0)
    engine = MemoryEngine(maintain_vt_index=vt_index, segment_size=segment_size)
    relation = TemporalRelation(schema, clock=clock, keep_backlog=False, engine=engine)
    for i, offset in enumerate(offsets):
        clock.advance_to(Timestamp(10 * i))
        relation.insert("o", Timestamp(10 * i + offset), {})
    return relation, clock


class TestSegmentPruning:
    """Every pruning-capable strategy reports its zone-map counts."""

    def test_rollback_prefix_prunes_dead_segments(self):
        relation, clock = build_segmented([], [0] * 64)
        clock.advance_to(Timestamp(1000))
        for element in relation.all_elements()[:16]:
            relation.delete(element.element_surrogate)
        report = relation.explain(Rollback(Scan(relation), Timestamp(2000)))
        assert_report_shape(report, "rollback-prefix")
        # Segments 0-1 (positions 0-15) died before the probe.
        assert report.segments_pruned == 2
        assert report.segments_scanned == 6
        assert "segments  : 6 scanned, 2 pruned by zone maps" in report.render()

    def test_bitemporal_prefix_prunes_on_valid_time(self):
        relation, _clock = build_segmented([], [0] * 64)
        report = relation.explain(
            BitemporalSlice(Scan(relation), vt=Timestamp(0), tt=Timestamp(10_000))
        )
        assert_report_shape(report, "bitemporal-prefix")
        # Only segment 0's valid-time range [0, 70] covers vt=0.
        assert report.segments_scanned == 1
        assert report.segments_pruned == 7
        assert report.returned == 1

    def test_bounded_tt_window_reports_counts(self):
        relation, _clock = build_segmented(
            ["strongly bounded(5s, 5s)"], [(-1) ** i * 4 for i in range(64)]
        )
        report = relation.explain(ValidTimeslice(Scan(relation), Timestamp(104)))
        assert_report_shape(report, "bounded-tt-window")
        assert report.segments_scanned is not None
        assert report.segments_pruned is not None
        assert "segments  :" in report.render()

    def test_bounded_overlap_reports_counts(self):
        relation, _clock = build_segmented(["strongly bounded(5s, 5s)"], [0] * 64)
        report = relation.explain(
            ValidOverlap(Scan(relation), Interval(Timestamp(100), Timestamp(140)))
        )
        assert_report_shape(report, "bounded-tt-window-overlap")
        assert report.segments_scanned is not None
        assert "segments  :" in report.render()

    def test_segment_pruned_scan_without_vt_index(self):
        relation, _clock = build_segmented([], [0] * 64, vt_index=False)
        report = relation.explain(ValidTimeslice(Scan(relation), Timestamp(0)))
        # The columnar sidecar renames the strategy; counts are identical
        # on both paths (the REPRO_COLUMNAR=0 CI leg runs the other arm).
        expected = "columnar-scan" if columnar_enabled() else "segment-pruned-scan"
        assert_report_shape(report, expected)
        assert report.segments_scanned == 1
        assert report.segments_pruned == 7
        assert report.returned == 1
        # Only segment 0's elements were touched.
        assert report.examined == 8
        if columnar_enabled():
            assert report.columnar_positions_examined == 8
            assert report.columnar_elements_materialized == 1
            assert (
                "columnar  : 8 positions examined, 1 elements materialized"
                in report.render()
            )
        else:
            assert report.columnar_positions_examined is None
            assert "columnar  :" not in report.render()

    def test_non_pruning_strategy_reports_no_counts(self):
        relation, _clock = build_segmented([], [0] * 64)
        report = relation.explain(ValidTimeslice(Scan(relation), Timestamp(0)))
        assert_report_shape(report, "engine-index")
        assert report.segments_scanned is None
        assert "segments  :" not in report.render()


class TestSmallRelationThreshold:
    def test_below_threshold_falls_to_full_scan(self):
        count = Planner.SMALL_RELATION_THRESHOLD - 1
        relation = build_events(["globally non-decreasing"], [3] * count)
        report = relation.explain(ValidTimeslice(Scan(relation), Timestamp(13)))
        assert_report_shape(report, "small-relation-scan")
        assert any(
            f"threshold {Planner.SMALL_RELATION_THRESHOLD}" in decision
            for decision in report.decisions
        )

    def test_at_threshold_keeps_specialized_strategy(self):
        count = Planner.SMALL_RELATION_THRESHOLD
        relation = build_events(["globally non-decreasing"], [3] * count)
        report = relation.explain(ValidTimeslice(Scan(relation), Timestamp(13)))
        assert_report_shape(report, "monotone-binary-search")

    def test_degenerate_is_exempt(self):
        # The degenerate point lookup has no setup cost to skip.
        relation = build_events(["degenerate"], [0] * 2)
        report = relation.explain(ValidTimeslice(Scan(relation), Timestamp(10)))
        assert_report_shape(report, "degenerate-rollback")


class TestReportMechanics:
    def test_tql_statement_gets_compile_span(self):
        relation = build_events(["strongly bounded(5s, 5s)"], [0] * 30, name="temps")
        report = relation.explain("SELECT * FROM temps VALID AT 100s")
        assert report.statement == "SELECT * FROM temps VALID AT 100s"
        assert report.strategy == "bounded-tt-window"
        names = [span.name for span in report.trace.all_spans()]
        assert names[0] == "compile"
        assert report.trace.span_count() >= 4

    def test_no_execute_plans_only(self):
        relation = build_events(["degenerate"], [0] * 10)
        report = relation.explain(
            ValidTimeslice(Scan(relation), Timestamp(50)), execute=False
        )
        assert report.strategy == "degenerate-rollback"
        assert not report.executed
        assert report.results == []
        names = [span.name for span in report.trace.all_spans()]
        assert "execute" not in names

    def test_manual_timer_makes_deterministic_trace(self):
        relation = build_events(["degenerate"], [0] * 10)
        report = relation.explain(
            ValidTimeslice(Scan(relation), Timestamp(50)), timer=ManualTimer()
        )
        assert all(span.duration_seconds == 0.0 for span in report.trace.all_spans())

    def test_render_mentions_strategy_and_spans(self):
        relation = build_events(["degenerate"], [0] * 10)
        report = relation.explain(ValidTimeslice(Scan(relation), Timestamp(50)))
        rendered = report.render()
        assert "strategy  : degenerate-rollback" in rendered
        assert "decisions :" in rendered
        assert "- plan" in rendered
        assert "operator:degenerate-rollback" in rendered
