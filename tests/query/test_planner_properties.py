"""Differential properties: every planner strategy equals the naive executor.

For each access path the planner can choose (degenerate rollback,
monotone binary search, sequential interval search, bounded tt-window,
engine index, rollback prefix, bitemporal prefix, current state), a
random *compliant* workload is generated -- built with ``append_many``
batches and single inserts mixed, plus deletions -- and random
timeslice / rollback / overlap / bitemporal queries are answered both
by the planned operator and by :class:`NaiveExecutor`.  The answers
must be identical element sets, and the planner must actually have
chosen the strategy the declaration licenses.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.query import (
    BitemporalSlice,
    CurrentState,
    NaiveExecutor,
    Planner,
    Rollback,
    Scan,
    ValidOverlap,
    ValidTimeslice,
)
from repro.relation.schema import TemporalSchema, ValidTimeKind
from repro.relation.temporal_relation import TemporalRelation
from tests.strategies import EVENT_DECLARATIONS, compliant_vt_ticks

pytestmark = pytest.mark.slow

#: Which timeslice strategy each declaration must produce (memory engine).
EXPECTED_TIMESLICE_STRATEGY = {
    (): "engine-index",
    ("degenerate",): "degenerate-rollback",
    ("retroactive",): "bounded-tt-window",
    ("predictive",): "bounded-tt-window",
    ("globally non-decreasing",): "monotone-binary-search",
    ("globally non-increasing",): "monotone-binary-search-descending",
    ("globally sequential",): "monotone-binary-search",
    ("strongly bounded(5s, 5s)",): "bounded-tt-window",
    ("retroactively bounded(30s)",): "bounded-tt-window",
}

#: Strategies with per-query setup cost; below the planner's
#: small-relation threshold they yield to a plain full scan.  The
#: degenerate point lookup and the engine-index fallback are exempt.
STRATEGIES_WITH_SETUP = {
    "monotone-binary-search",
    "monotone-binary-search-descending",
    "bounded-tt-window",
    "sequential-interval-search",
}


def expected_timeslice_strategy(declared: str, relation) -> str:
    if (
        declared in STRATEGIES_WITH_SETUP
        and len(relation.engine) < Planner.SMALL_RELATION_THRESHOLD
    ):
        return "small-relation-scan"
    return declared


def surrogates(elements) -> list:
    return sorted(e.element_surrogate for e in elements)


def assert_plan_agrees(relation, query, expect_strategy=None) -> None:
    plan = Planner(relation).plan(query)
    if expect_strategy is not None:
        assert plan.strategy == expect_strategy, plan.explanation
    assert surrogates(plan.execute()) == surrogates(NaiveExecutor().run(query))


@st.composite
def event_workloads(draw):
    """A compliant event relation plus interesting probe coordinates.

    Element i is stored at ``tt = i`` exactly -- the dense stamp
    sequence both unit-spaced single inserts and ``append_many``
    batches produce -- with valid times built compliant to the drawn
    declaration by :func:`tests.strategies.compliant_vt_ticks`.  The
    arrival sequence is split into a random mix of single inserts and
    batches; a random subset of elements is then deleted.
    """
    names = draw(st.sampled_from(EVENT_DECLARATIONS))
    count = draw(st.integers(min_value=1, max_value=24))
    vts = draw(compliant_vt_ticks(names, count))

    schema = TemporalSchema(name="r", time_varying=("v",), specializations=list(names))
    clock = SimulatedWallClock(start=0)
    relation = TemporalRelation(schema, clock=clock)
    rows = [("obj", Timestamp(vt), {"v": i}) for i, vt in enumerate(vts)]

    position = 0
    while position < count:
        size = draw(st.integers(min_value=1, max_value=count - position))
        clock.advance_to(Timestamp(position))
        chunk = rows[position : position + size]
        if size == 1 and draw(st.booleans()):
            relation.insert(*chunk[0])
        else:
            relation.append_many(chunk)
        position += size

    stored = relation.current()
    to_delete = draw(
        st.lists(
            st.sampled_from([e.element_surrogate for e in stored]),
            max_size=min(4, len(stored)),
            unique=True,
        )
    )
    clock.advance_to(Timestamp(count + 100))
    for surrogate in to_delete:
        relation.delete(surrogate)

    lo, hi = min(vts), max(vts)
    probe_vt = draw(st.integers(min_value=lo - 10, max_value=hi + 10))
    probe_tt = draw(st.integers(min_value=-5, max_value=count + 200))
    width = draw(st.integers(min_value=1, max_value=40))
    return names, relation, Timestamp(probe_vt), Timestamp(probe_tt), width


@given(event_workloads())
def test_timeslice_matches_naive_and_uses_declared_path(workload):
    names, relation, vt, _tt, _width = workload
    expected = expected_timeslice_strategy(EXPECTED_TIMESLICE_STRATEGY[names], relation)
    query = ValidTimeslice(Scan(relation), vt)
    assert_plan_agrees(relation, query, expected)
    # Probe an exactly-stored valid time too, not just a random one.
    elements = relation.all_elements()
    assert_plan_agrees(
        relation,
        ValidTimeslice(Scan(relation), elements[len(elements) // 2].vt),
        expected,
    )


@given(event_workloads())
def test_rollback_and_bitemporal_match_naive(workload):
    _names, relation, vt, tt, _width = workload
    assert_plan_agrees(relation, Rollback(Scan(relation), tt), "rollback-prefix")
    assert_plan_agrees(
        relation, BitemporalSlice(Scan(relation), vt, tt), "bitemporal-prefix"
    )


@given(event_workloads())
def test_overlap_and_current_match_naive(workload):
    _names, relation, vt, _tt, width = workload
    window = Interval(vt, Timestamp(vt.ticks + width))
    assert_plan_agrees(relation, ValidOverlap(Scan(relation), window))
    assert_plan_agrees(relation, CurrentState(Scan(relation)), "current")


@st.composite
def sequential_interval_workloads(draw):
    """Disjoint, ordered intervals stored in order (interval sequential)."""
    from repro.core.taxonomy import IntervalGloballySequential

    count = draw(st.integers(min_value=1, max_value=15))
    schema = TemporalSchema(
        name="weeks", valid_time_kind=ValidTimeKind.INTERVAL, time_varying=("v",)
    )
    schema.specializations = (IntervalGloballySequential(),)
    clock = SimulatedWallClock(start=0)
    relation = TemporalRelation(schema, clock=clock)
    if draw(st.booleans()):
        # Spaced intervals, stored one at a time with the clock advanced
        # past each interval's end (the classic payroll-weeks shape).
        for i in range(count):
            length = draw(st.integers(min_value=1, max_value=8))
            clock.advance_to(Timestamp(10 * i + 9))
            relation.insert(
                "emp", Interval(Timestamp(10 * i), Timestamp(10 * i + length)), {"v": i}
            )
    else:
        # One batch of consecutive transaction stamps is only sequential
        # for densely packed unit intervals: stamp i and interval
        # [i, i+1) keep min(tt, vt_start) = max(tt', vt_end') exactly.
        relation.append_many(
            [
                ("emp", Interval(Timestamp(i), Timestamp(i + 1)), {"v": i})
                for i in range(count)
            ]
        )
    probe = draw(st.integers(min_value=-5, max_value=10 * count + 5))
    return relation, Timestamp(probe)


@given(sequential_interval_workloads())
def test_sequential_interval_timeslice_matches_naive(workload):
    relation, vt = workload
    assert_plan_agrees(
        relation,
        ValidTimeslice(Scan(relation), vt),
        expected_timeslice_strategy("sequential-interval-search", relation),
    )
