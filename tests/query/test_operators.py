"""Direct unit tests for the physical operators."""

import pytest

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.query import operators
from repro.relation.schema import TemporalSchema, ValidTimeKind
from repro.relation.temporal_relation import TemporalRelation
from repro.storage.sqlite_backend import SQLiteEngine


def build_events(offsets, engine=None, specializations=()):
    schema = TemporalSchema(name="r", specializations=list(specializations))
    clock = SimulatedWallClock(start=0)
    relation = TemporalRelation(schema, clock=clock, engine=engine, keep_backlog=False)
    for i, offset in enumerate(offsets):
        clock.advance_to(Timestamp(10 * i))
        relation.insert("o", Timestamp(10 * i + offset), {})
    return relation


class TestFullScans:
    def test_timeslice_full_scan_counts_everything(self):
        relation = build_events([0] * 20)
        results, examined = operators.timeslice_full_scan(relation, Timestamp(50))
        assert examined == 20
        assert len(results) == 1

    def test_rollback_full_scan(self):
        relation = build_events([0] * 20)
        results, examined = operators.rollback_full_scan(relation, Timestamp(95))
        assert examined == 20
        assert len(results) == 10


class TestRollbackPrefix:
    def test_prefix_examines_only_prefix(self):
        relation = build_events([0] * 100)
        results, examined = operators.rollback_prefix(relation, Timestamp(95))
        assert len(results) == 10
        assert examined == 10

    def test_falls_back_without_memory_index(self):
        relation = build_events([0] * 10, engine=SQLiteEngine())
        results, examined = operators.rollback_prefix(relation, Timestamp(95))
        assert len(results) == 10


class TestDegenerateOperator:
    def test_point_lookup(self):
        relation = build_events([0] * 50, specializations=["degenerate"])
        results, examined = operators.timeslice_degenerate(relation, Timestamp(250))
        assert len(results) == 1
        assert examined == 1

    def test_requires_memory_index(self):
        relation = build_events([0] * 5, engine=SQLiteEngine(), specializations=["degenerate"])
        with pytest.raises(ValueError, match="tt index"):
            operators.timeslice_degenerate(relation, Timestamp(0))


class TestBoundedWindowOperator:
    def test_two_sided(self):
        relation = build_events([3] * 200, specializations=["strongly bounded(5s, 5s)"])
        results, examined = operators.timeslice_bounded_window(
            relation, Timestamp(503), lower_offset=-5_000_000, upper_offset=5_000_000
        )
        assert len(results) == 1
        assert examined <= 2

    def test_one_sided_lower_none(self):
        """Retroactive side only: scan the prefix below vt - lower."""
        relation = build_events([-3] * 50)
        results, examined = operators.timeslice_bounded_window(
            relation, Timestamp(247), lower_offset=None, upper_offset=0
        )
        assert len(results) == 1
        # Elements with tt >= vt: positions 25..49 (suffix scan).
        assert examined == 25

    def test_one_sided_upper_none(self):
        relation = build_events([3] * 50)
        results, examined = operators.timeslice_bounded_window(
            relation, Timestamp(253), lower_offset=0, upper_offset=None
        )
        assert len(results) == 1
        assert examined == 26  # prefix through vt

    def test_unbounded_both_scans_all(self):
        relation = build_events([0] * 10)
        _results, examined = operators.timeslice_bounded_window(
            relation, Timestamp(50), None, None
        )
        assert examined == 10


class TestMonotoneOperators:
    def test_ascending_run_collection(self):
        # Duplicate valid times: the full run must be returned.
        schema = TemporalSchema(name="m")
        clock = SimulatedWallClock(start=0)
        relation = TemporalRelation(schema, clock=clock, keep_backlog=False)
        for i, vt in enumerate([0, 10, 10, 10, 20]):
            clock.advance_to(Timestamp(10 * i))
            relation.insert("o", Timestamp(vt), {})
        results, _examined = operators.timeslice_monotone_events(relation, Timestamp(10))
        assert len(results) == 3

    def test_descending(self):
        schema = TemporalSchema(name="m")
        clock = SimulatedWallClock(start=0)
        relation = TemporalRelation(schema, clock=clock, keep_backlog=False)
        for i, vt in enumerate([30, 20, 20, 10]):
            clock.advance_to(Timestamp(10 * i))
            relation.insert("o", Timestamp(vt), {})
        results, _examined = operators.timeslice_monotone_events(
            relation, Timestamp(20), descending=True
        )
        assert len(results) == 2

    def test_miss_returns_empty(self):
        relation = build_events([0] * 10)
        results, _examined = operators.timeslice_monotone_events(relation, Timestamp(55))
        assert results == []

    def test_skips_deleted_elements(self):
        relation = build_events([0] * 10)
        victim = relation.all_elements()[5]
        relation.delete(victim.element_surrogate)
        results, _ = operators.timeslice_monotone_events(relation, victim.vt)
        assert results == []


class TestSequentialIntervalOperator:
    def build_intervals(self):
        schema = TemporalSchema(name="weeks", valid_time_kind=ValidTimeKind.INTERVAL)
        clock = SimulatedWallClock(start=0)
        relation = TemporalRelation(schema, clock=clock, keep_backlog=False)
        for week in range(10):
            clock.advance_to(Timestamp(100 * week + 90))
            relation.insert(
                "o", Interval(Timestamp(100 * week), Timestamp(100 * week + 70)), {}
            )
        return relation

    def test_hit(self):
        relation = self.build_intervals()
        results, examined = operators.timeslice_sequential_intervals(
            relation, Timestamp(350)
        )
        assert len(results) == 1
        assert results[0].vt.start == Timestamp(300)
        assert examined <= 10

    def test_gap_miss(self):
        relation = self.build_intervals()
        results, _ = operators.timeslice_sequential_intervals(relation, Timestamp(380))
        assert results == []

    def test_before_first(self):
        relation = self.build_intervals()
        results, _ = operators.timeslice_sequential_intervals(relation, Timestamp(-5))
        assert results == []

    def test_empty_relation(self):
        schema = TemporalSchema(name="w", valid_time_kind=ValidTimeKind.INTERVAL)
        relation = TemporalRelation(schema, clock=SimulatedWallClock(start=0))
        results, examined = operators.timeslice_sequential_intervals(
            relation, Timestamp(0)
        )
        assert results == [] and examined == 0


class TestBitemporalOperator:
    def test_prefix_and_filter(self):
        relation = build_events([0] * 20)
        victim = relation.all_elements()[3]
        relation.delete(victim.element_surrogate)
        results, examined = operators.bitemporal_prefix(
            relation, vt=victim.vt, tt=Timestamp(100)
        )
        assert [e.element_surrogate for e in results] == [victim.element_surrogate]
        assert examined <= 11
