"""Unit tests for the standing-view registry: plan compilation, delta
journaling, epoch cursors, and the out-of-band resync machinery.

The differential suite (``test_views_differential``) checks end-to-end
equivalence under randomized workloads; these tests pin the individual
contracts those workloads rely on.
"""

import pytest

from repro.chronos.clock import LogicalClock
from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.core.constraints import EnforcementMode
from repro.relation.errors import SchemaError
from repro.relation.schema import TemporalSchema, ValidTimeKind
from repro.relation.temporal_relation import TemporalRelation
from repro.views import (
    ConstraintWatchView,
    CurrentStateView,
    OverlapView,
    TimesliceView,
    ViewRegistry,
    compile_maintenance_plan,
)


@pytest.fixture(autouse=True)
def _no_env_views(monkeypatch):
    # These tests assert exact registry contents; the REPRO_VIEWS=1 CI
    # leg would add its auto-registered view to every relation.
    monkeypatch.delenv("REPRO_VIEWS", raising=False)


def make_relation(specializations=(), kind=ValidTimeKind.EVENT, enforcement=None):
    extra = {} if enforcement is None else {"enforcement": enforcement}
    schema = TemporalSchema(
        name="watched",
        valid_time_kind=kind,
        time_varying=("reading",),
        specializations=list(specializations),
        **extra,
    )
    return TemporalRelation(schema, clock=LogicalClock(start=100))


class TestPlanCompilation:
    def test_degenerate_event_gets_boundary_plan(self):
        relation = make_relation(["degenerate"])
        assert compile_maintenance_plan(relation.schema) == "degenerate-boundary"

    @pytest.mark.parametrize(
        "names", [["globally sequential"], ["globally non-decreasing"]]
    )
    def test_monotone_orderings_get_frontier_plan(self, names):
        relation = make_relation(names)
        assert compile_maintenance_plan(relation.schema) == "sequential-frontier"

    def test_undeclared_schema_probes(self):
        relation = make_relation()
        assert compile_maintenance_plan(relation.schema) == "probe"

    def test_record_mode_orderings_cannot_be_trusted(self):
        # RECORD mode admits violating stamps, so the frontier argument
        # is unsound: the compiler must fall back to probing.
        relation = make_relation(
            ["globally sequential"], enforcement=EnforcementMode.RECORD
        )
        assert compile_maintenance_plan(relation.schema) == "probe"

    def test_view_instances_carry_their_plan(self):
        relation = make_relation(["globally non-decreasing"])
        registry = relation.views
        assert registry.register_current().plan == "store-materialized"
        assert registry.register_timeslice("slice", Timestamp(5)).plan == (
            "sequential-frontier"
        )
        assert registry.register_watch("w", lambda e: True).plan == "probe"


class TestRegistry:
    def test_register_and_lookup(self):
        relation = make_relation()
        registry = relation.views
        view = registry.register_timeslice("slice", Timestamp(3))
        assert "slice" in registry
        assert registry.get("slice") is view
        assert registry.names() == ["slice"]
        assert len(registry) == 1

    def test_duplicate_name_rejected(self):
        registry = make_relation().views
        registry.register_current()
        with pytest.raises(SchemaError):
            registry.register_current()

    def test_unregister_unknown_name_rejected(self):
        registry = make_relation().views
        with pytest.raises(SchemaError):
            registry.unregister("ghost")

    def test_views_property_is_lazy(self):
        relation = make_relation()
        assert not relation.has_views
        relation.views.register_current()
        assert relation.has_views

    def test_registering_mid_workload_sees_existing_rows(self):
        relation = make_relation()
        relation.insert("alpha", Timestamp(5))
        relation.insert("beta", Timestamp(9))
        view = relation.views.register_timeslice("slice", Timestamp(5))
        assert [e.object_surrogate for e in view.snapshot()] == ["alpha"]


class TestDeltaJournal:
    def test_insert_and_delete_epochs_are_commit_stamps(self):
        relation = make_relation()
        registry = relation.views
        floor = registry.journal_floor
        stored = relation.insert("alpha", Timestamp(5))
        closed = relation.delete(stored.element_surrogate)
        feed = registry.deltas_since(floor)
        assert not feed.resync
        kinds = [(delta.kind, delta.epoch) for delta in feed.deltas]
        assert kinds == [
            ("insert", stored.tt_start.microseconds),
            ("close", closed.tt_stop.microseconds),
        ]
        assert feed.epoch == closed.tt_stop.microseconds

    def test_modify_emits_paired_deltas_sharing_one_epoch(self):
        relation = make_relation()
        registry = relation.views
        stored = relation.insert("alpha", Timestamp(5))
        cursor = registry.last_epoch
        replacement = relation.modify(stored.element_surrogate, vt=Timestamp(7))
        feed = registry.deltas_since(cursor)
        assert [delta.kind for delta in feed.deltas] == ["close", "insert"]
        assert feed.deltas[0].epoch == feed.deltas[1].epoch
        assert feed.deltas[1].element.element_surrogate == replacement.element_surrogate

    def test_cursor_at_last_epoch_sees_nothing(self):
        relation = make_relation()
        relation.insert("alpha", Timestamp(5))
        registry = relation.views
        feed = registry.deltas_since(registry.last_epoch)
        assert not feed.resync
        assert feed.deltas == ()
        assert feed.epoch == registry.last_epoch

    def test_cursor_behind_floor_must_resync(self):
        relation = make_relation()
        registry = relation.views
        relation.insert("alpha", Timestamp(5))
        feed = registry.deltas_since(registry.journal_floor - 10)
        assert feed.resync
        assert feed.deltas == ()

    def test_bounded_journal_evicts_and_advances_floor(self):
        relation = make_relation()
        registry = relation.views
        registry._journal_limit = 4
        opening_floor = registry.journal_floor
        elements = [relation.insert("alpha", Timestamp(i)) for i in range(8)]
        # Four deltas fell off the front; the floor is the newest
        # evicted epoch, so older cursors must resync while cursors at
        # or past the floor stream the retained tail.
        assert registry.journal_floor == elements[3].tt_start.microseconds
        assert registry.deltas_since(opening_floor).resync
        fresh = registry.deltas_since(registry.journal_floor)
        assert [d.element.element_surrogate for d in fresh.deltas] == [
            e.element_surrogate for e in elements[4:]
        ]

    def test_default_journal_limit_is_generous(self):
        assert ViewRegistry.JOURNAL_LIMIT >= 1024


class TestOutOfBandChanges:
    def test_vacuum_marks_views_stale_but_keeps_journal(self):
        from repro.storage.vacuum import vacuum_relation

        relation = make_relation()
        registry = relation.views
        view = registry.register_timeslice("slice", Timestamp(5))
        stored = relation.insert("alpha", Timestamp(5))
        relation.delete(relation.insert("beta", Timestamp(5)).element_surrogate)
        cursor = registry.journal_floor
        before = registry.deltas_since(registry.journal_floor)
        vacuum_relation(relation, relation.clock.peek())
        # Logical state is preserved: the journal still answers the old
        # cursor, and the view re-derives against the new engine.
        after = registry.deltas_since(cursor)
        assert not after.resync
        assert [d.kind for d in after.deltas] == [d.kind for d in before.deltas]
        assert view.snapshot() == view.recompute()
        assert [e.element_surrogate for e in view.snapshot()] == [
            stored.element_surrogate
        ]

    def test_untracked_engine_write_forces_resync(self):
        relation = make_relation()
        registry = relation.views
        view = registry.register_current()
        stored = relation.insert("alpha", Timestamp(5))
        cursor = registry.last_epoch
        # Mutate storage behind the relation's back.
        relation.engine.close_element(
            stored.element_surrogate, relation.clock.now()
        )
        feed = registry.deltas_since(cursor)
        assert feed.resync
        assert view.snapshot() == view.recompute() == []


class TestFrontierMaintenance:
    def test_frontier_closes_once_and_stays_correct(self):
        relation = make_relation(["globally non-decreasing"])
        view = relation.views.register_timeslice("slice", Timestamp(2))
        relation.insert("alpha", Timestamp(2))
        assert not view.describe()["frontier_passed"]
        relation.insert("beta", Timestamp(5))  # past the slice: closes frontier
        assert view.describe()["frontier_passed"]
        relation.insert("gamma", Timestamp(9))  # skipped in O(1)
        assert view.snapshot() == view.recompute()
        assert [e.object_surrogate for e in view.snapshot()] == ["alpha"]

    def test_closes_processed_after_frontier_passes(self):
        relation = make_relation(["globally non-decreasing"])
        view = relation.views.register_timeslice("slice", Timestamp(2))
        stored = relation.insert("alpha", Timestamp(2))
        relation.insert("beta", Timestamp(7))
        relation.delete(stored.element_surrogate)
        assert view.snapshot() == view.recompute() == []

    def test_overlap_frontier_uses_window_end(self):
        from repro.core.taxonomy.interval_inter import IntervalGloballyNonDecreasing

        relation = make_relation(
            [IntervalGloballyNonDecreasing()], kind=ValidTimeKind.INTERVAL
        )
        window = Interval(Timestamp(4), Timestamp(8))
        view = relation.views.register_overlap("window", window)
        relation.insert("alpha", Interval(Timestamp(2), Timestamp(6)))
        relation.insert("beta", Interval(Timestamp(8), Timestamp(12)))  # closes
        relation.insert("gamma", Interval(Timestamp(9), Timestamp(20)))
        assert view.describe()["frontier_passed"]
        assert view.snapshot() == view.recompute()
        assert [e.object_surrogate for e in view.snapshot()] == ["alpha"]


class TestViewSemantics:
    def test_current_view_delegates_to_store(self):
        relation = make_relation()
        view = relation.views.register_current()
        assert isinstance(view, CurrentStateView)
        stored = relation.insert("alpha", Timestamp(5))
        assert len(view) == relation.live_count() == 1
        relation.delete(stored.element_surrogate)
        assert view.snapshot() == view.recompute() == []

    def test_timeslice_event_requires_exact_coincidence(self):
        relation = make_relation()
        view = relation.views.register_timeslice("slice", Timestamp(5))
        relation.insert("alpha", Timestamp(5))
        relation.insert("beta", Timestamp(4))
        assert [e.object_surrogate for e in view.snapshot()] == ["alpha"]

    def test_overlap_event_uses_half_open_window(self):
        relation = make_relation()
        window = Interval(Timestamp(4), Timestamp(8))
        view = relation.views.register_overlap("window", window)
        relation.insert("at-start", Timestamp(4))
        relation.insert("at-end", Timestamp(8))  # excluded: half-open
        assert [e.object_surrogate for e in view.snapshot()] == ["at-start"]

    def test_watch_view_flags_predicate_matches(self):
        relation = make_relation()
        view = relation.views.register_watch(
            "hot", lambda element: (element.time_varying.get("reading") or 0) > 10
        )
        assert isinstance(view, ConstraintWatchView)
        relation.insert("alpha", Timestamp(1), {"reading": 3})
        hot = relation.insert("beta", Timestamp(2), {"reading": 40})
        assert [e.element_surrogate for e in view.snapshot()] == [
            hot.element_surrogate
        ]
        relation.delete(hot.element_surrogate)
        assert view.snapshot() == []

    def test_views_are_byte_identical_to_recompute_on_the_wire(self):
        from repro.server.protocol import elements_to_json

        relation = make_relation()
        view = relation.views.register_overlap(
            "window", Interval(Timestamp(0), Timestamp(50))
        )
        for i in range(12):
            relation.insert(f"o{i % 3}", Timestamp(i * 4), {"reading": i})
        for victim in relation.current()[::3]:
            relation.delete(victim.element_surrogate)
        import json

        maintained = json.dumps(elements_to_json(view.snapshot()), sort_keys=True)
        recomputed = json.dumps(elements_to_json(view.recompute()), sort_keys=True)
        assert maintained == recomputed


class TestExplainIntegration:
    def test_explain_lists_standing_views(self):
        relation = make_relation()
        relation.views.register_timeslice("slice", Timestamp(5))
        relation.insert("alpha", Timestamp(5))
        report = relation.explain("SELECT * FROM watched")
        rendered = report.render()
        assert "standing view 'slice'" in rendered
        assert "plan=probe" in rendered

    def test_explain_unchanged_without_views(self):
        relation = make_relation()
        relation.insert("alpha", Timestamp(5))
        report = relation.explain("SELECT * FROM watched")
        assert "standing view" not in report.render()
