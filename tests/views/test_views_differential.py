"""Differential suite: delta-maintained views vs from-scratch recompute.

The invariant the whole subsystem rests on: after *any* interleaving of
mutations (single inserts, atomic batches, deletes, modifies) with
maintenance events (vacuum engine swaps, segment compaction into the
cold tier, shard rebalancing), every registered standing view's
maintained snapshot equals a from-scratch recomputation over the
engine -- identical elements, identical canonical transaction-time
order.  Views register *mid-workload*, so they must also absorb
pre-existing state correctly.

Runs the same randomized scripts across every engine topology the repo
ships: flat memory, memory without the valid-time index, small
segments, small segments spilling to the compressed cold tier, hash
sharding over memory shards, and hash sharding over SQLite shards.
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chronos.clock import LogicalClock
from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.relation.schema import TemporalSchema, ValidTimeKind
from repro.relation.temporal_relation import TemporalRelation
from repro.storage.memory import MemoryEngine
from repro.storage.sharded import ShardedEngine
from tests.strategies import (
    compliant_vt_ticks,
    run_standing_view_workload,
    specialization_declarations,
    standing_view_ops,
)

CLOCK_START = 1_000


def make_relation(engine=None, kind=ValidTimeKind.EVENT, specializations=()):
    schema = TemporalSchema(
        name="standing",
        valid_time_kind=kind,
        time_varying=("reading",),
        specializations=list(specializations),
    )
    return TemporalRelation(
        schema, clock=LogicalClock(start=CLOCK_START), engine=engine
    )


class TestEventTopologies:
    @settings(max_examples=25, deadline=None)
    @given(ops=standing_view_ops())
    def test_flat_memory(self, ops):
        run_standing_view_workload(make_relation(MemoryEngine()), ops)

    @settings(max_examples=15, deadline=None)
    @given(ops=standing_view_ops())
    def test_memory_without_vt_index(self, ops):
        run_standing_view_workload(
            make_relation(MemoryEngine(maintain_vt_index=False)), ops
        )

    @settings(max_examples=15, deadline=None)
    @given(ops=standing_view_ops())
    def test_small_segments(self, ops):
        run_standing_view_workload(
            make_relation(MemoryEngine(segment_size=4)), ops
        )

    @settings(max_examples=10, deadline=None)
    @given(ops=standing_view_ops())
    def test_tiered_cold_storage(self, ops):
        with tempfile.TemporaryDirectory() as tier_dir:
            engine = MemoryEngine(segment_size=4, tier_dir=tier_dir)
            try:
                run_standing_view_workload(make_relation(engine), ops)
            finally:
                engine.close()

    @settings(max_examples=10, deadline=None)
    @given(ops=standing_view_ops())
    def test_hash_sharded_memory(self, ops):
        run_standing_view_workload(
            make_relation(ShardedEngine(shard_count=3)), ops
        )

    @settings(max_examples=6, deadline=None)
    @given(ops=standing_view_ops(max_ops=16))
    def test_hash_sharded_sqlite(self, ops):
        with tempfile.TemporaryDirectory() as data_dir:
            engine = ShardedEngine(data_dir=data_dir, shard_count=3)
            run_standing_view_workload(make_relation(engine), ops)


class TestIntervalTopologies:
    @settings(max_examples=20, deadline=None)
    @given(ops=standing_view_ops())
    def test_flat_memory(self, ops):
        run_standing_view_workload(
            make_relation(MemoryEngine(), kind=ValidTimeKind.INTERVAL), ops
        )

    @settings(max_examples=10, deadline=None)
    @given(ops=standing_view_ops())
    def test_hash_sharded_memory(self, ops):
        run_standing_view_workload(
            make_relation(ShardedEngine(shard_count=3), kind=ValidTimeKind.INTERVAL),
            ops,
        )


class TestDeclaredOrderings:
    """Frontier plans must stay byte-identical to probing.

    The workload stamps compliantly with the declared specialization
    (REJECT mode would refuse anything else), registers range-shaped
    views early so the frontier machinery engages, then deletes a
    sample of live elements -- closes must land even after the insert
    frontier has passed.
    """

    @settings(max_examples=25, deadline=None)
    @given(data=st.data(), declaration=specialization_declarations())
    def test_frontier_plans_match_recompute(self, data, declaration):
        count = data.draw(st.integers(min_value=4, max_value=24), label="count")
        ticks = data.draw(compliant_vt_ticks(declaration, count), label="ticks")
        boundary = data.draw(
            st.integers(min_value=-30, max_value=80), label="boundary"
        )
        # compliant_vt_ticks stamps element i for tt = i, so the clock
        # must open at 0 for the declarations to hold in REJECT mode.
        schema = TemporalSchema(
            name="standing",
            time_varying=("reading",),
            specializations=list(declaration),
        )
        relation = TemporalRelation(schema, clock=LogicalClock(start=0))
        registry = relation.views
        views = [
            registry.register_timeslice("slice", Timestamp(boundary)),
            registry.register_overlap(
                "window", Interval(Timestamp(boundary), Timestamp(boundary + 15))
            ),
        ]
        relation.append_many(
            [(f"o{i % 3}", Timestamp(tick)) for i, tick in enumerate(ticks)]
        )
        live = relation.current()
        for victim in live[:: max(1, len(live) // 4)]:
            relation.delete(victim.element_surrogate)
        for view in views:
            assert view.snapshot() == view.recompute(), view.name


class TestCrossTopologyAgreement:
    """One script, every topology: all views agree across engines.

    Byte-identity across topologies is the server's canonical-codec
    promise extended to standing views; the wire form makes the
    comparison exact.
    """

    @settings(max_examples=8, deadline=None)
    @given(ops=standing_view_ops(max_ops=14))
    def test_same_script_same_answers(self, ops):
        import json

        from repro.server.protocol import elements_to_json

        def run(engine):
            relation = make_relation(engine)
            views = run_standing_view_workload(
                relation, ops, check_after_every_op=False
            )
            return [
                json.dumps(elements_to_json(view.snapshot()), sort_keys=True)
                for view in views
            ]

        flat = run(MemoryEngine())
        assert run(MemoryEngine(segment_size=4)) == flat
        assert run(ShardedEngine(shard_count=3)) == flat
