"""Tests for drift monitoring against declared offset regions."""

import pytest

from repro.chronos.duration import Duration
from repro.chronos.timestamp import Timestamp
from repro.core.taxonomy.base import Stamped
from repro.core.taxonomy.event_isolated import (
    DelayedRetroactive,
    PredictivelyBounded,
    Retroactive,
    StronglyBounded,
)
from repro.design.drift import DriftMonitor, _one_sided_closeness


def element(tt: int, vt: int) -> Stamped:
    return Stamped(tt_start=Timestamp(tt), vt=Timestamp(vt))


class TestTwoSidedUtilization:
    def test_centered_traffic_is_low(self):
        monitor = DriftMonitor(StronglyBounded(Duration(100), Duration(100)).region())
        monitor.observe_all([element(1000, 1000 + d) for d in (-10, 0, 10)])
        report = monitor.report()
        assert report.violations == 0
        assert report.worst_utilization < 0.6

    def test_traffic_near_the_bound_alerts(self):
        monitor = DriftMonitor(StronglyBounded(Duration(100), Duration(100)).region())
        monitor.observe_all([element(1000, 1000 + d) for d in (0, 95)])
        report = monitor.report()
        assert report.violations == 0
        assert report.upper_utilization > 0.9
        assert report.alert(threshold=0.9)

    def test_violations_counted(self):
        monitor = DriftMonitor(StronglyBounded(Duration(10), Duration(10)).region())
        monitor.observe_all([element(0, 50), element(0, 0)])
        report = monitor.report()
        assert report.violations == 1
        assert report.alert()


class TestOneSidedUtilization:
    def test_delayed_retroactive_closeness(self):
        monitor = DriftMonitor(DelayedRetroactive(Duration(10)).region())
        monitor.observe_all([element(100, 60)])  # offset -40, bound -10
        report = monitor.report()
        assert report.upper_utilization == pytest.approx(0.25)
        monitor.observe(element(100, 90))  # offset -10 = the bound
        assert monitor.report().upper_utilization == pytest.approx(1.0)

    def test_predictively_bounded_closeness(self):
        monitor = DriftMonitor(PredictivelyBounded(Duration(30)).region())
        monitor.observe(element(0, 15))
        assert monitor.report().upper_utilization == pytest.approx(0.5)

    def test_diagonal_bound_has_no_scale(self):
        monitor = DriftMonitor(Retroactive().region())
        monitor.observe(element(100, 50))
        report = monitor.report()
        assert report.upper_utilization is None
        assert not report.alert()
        monitor.observe(element(100, 200))  # violation
        assert monitor.report().alert()


class TestClosenessFunction:
    @pytest.mark.parametrize(
        "offset, bound, is_upper, expected",
        [
            (-40, -10, True, 0.25),
            (-10, -10, True, 1.0),
            (-5, -10, True, 2.0),
            (15, 30, True, 0.5),
            (45, 30, True, 1.5),
            (-100, 30, True, 0.0),
            (20, 10, False, 0.5),
            (5, 10, False, 2.0),
            (-15, -30, False, 0.5),
            (-45, -30, False, 1.5),
            (100, -30, False, 0.0),
        ],
    )
    def test_table(self, offset, bound, is_upper, expected):
        assert _one_sided_closeness(offset, bound, is_upper) == pytest.approx(expected)


class TestWindowing:
    def test_sliding_window_forgets_old_extremes(self):
        monitor = DriftMonitor(
            StronglyBounded(Duration(100), Duration(100)).region(), window=2
        )
        monitor.observe(element(0, 95))   # hot
        monitor.observe(element(10, 10))  # mild
        monitor.observe(element(20, 21))  # mild; the hot one falls out
        assert monitor.report().worst_utilization < 0.2

    def test_window_validation(self):
        with pytest.raises(ValueError):
            DriftMonitor(Retroactive().region(), window=0)

    def test_empty_report(self):
        report = DriftMonitor(Retroactive().region()).report()
        assert report.window == 0
        assert report.worst_utilization == 0.0
