"""Tests for the Figure 1 panel renderer and figure text output."""

from repro.chronos.duration import Duration
from repro.core.taxonomy import (
    EVENT_ISOLATED_LATTICE,
    Degenerate,
    Predictive,
    Retroactive,
    StronglyBounded,
)
from repro.design.report import render_figure1, render_region_panel


class TestRegionPanel:
    def test_retroactive_fills_lower_triangle(self):
        panel = render_region_panel(Retroactive().region(), size=5, span=40)
        rows = panel.splitlines()[1:-1]  # strip axis labels
        # Bottom row (vt = 0): everything with tt >= 0 is allowed.
        assert rows[-1] == "# # # # #"
        # Top row (vt = span): only tt = span remains.
        assert rows[0] == ". . . . #"

    def test_predictive_fills_upper_triangle(self):
        panel = render_region_panel(Predictive().region(), size=5, span=40)
        rows = panel.splitlines()[1:-1]
        assert rows[0] == "# # # # #"
        assert rows[-1] == "# . . . ."

    def test_degenerate_is_the_diagonal(self):
        panel = render_region_panel(Degenerate().region(), size=5, span=40)
        rows = panel.splitlines()[1:-1]
        for row_index, row in enumerate(rows):
            cells = row.split(" ")
            for column_index, cell in enumerate(cells):
                on_diagonal = column_index == len(rows) - 1 - row_index
                assert (cell == "#") == on_diagonal

    def test_band_is_symmetric_for_symmetric_bounds(self):
        region = StronglyBounded(Duration(8), Duration(8)).region()
        panel = render_region_panel(region, size=9, span=40)
        rows = [row.split(" ") for row in panel.splitlines()[1:-1]]
        size = len(rows)
        for row in range(size):
            for column in range(size):
                mirrored = rows[size - 1 - column][size - 1 - row]
                assert rows[row][column] == mirrored

    def test_every_panel_cell_matches_region_membership(self):
        second = 1_000_000
        for name in EVENT_ISOLATED_LATTICE.node_names:
            region = EVENT_ISOLATED_LATTICE.instance(name).region()
            panel = render_region_panel(region, size=6, span=40)
            rows = panel.splitlines()[1:-1]
            step = 40 / 5
            for row_position, row in enumerate(rows):
                vt = round((5 - row_position) * step) * second
                for column_position, cell in enumerate(row.split(" ")):
                    tt = round(column_position * step) * second
                    assert (cell == "#") == region.contains(vt - tt), (name, vt, tt)


class TestFigure1Text:
    def test_contains_every_type(self):
        text = render_figure1(size=5)
        for name in EVENT_ISOLATED_LATTICE.node_names:
            assert name in text


class TestOffsetHistogram:
    @staticmethod
    def elements(offsets):
        from repro.chronos.timestamp import Timestamp
        from repro.core.taxonomy.base import Stamped

        return [
            Stamped(tt_start=Timestamp(100 + i), vt=Timestamp(100 + i + off))
            for i, off in enumerate(offsets)
        ]

    def test_empty(self):
        from repro.design.report import offset_histogram

        assert offset_histogram([]) == "(no elements)"

    def test_constant_offsets(self):
        from repro.design.report import offset_histogram

        text = offset_histogram(self.elements([-30, -30, -30]))
        assert "all 3 offsets = -30.000s" in text

    def test_bucket_counts_sum_to_total(self):
        import re

        from repro.design.report import offset_histogram

        offsets = [-40, -35, -33, -31, -31, -30]
        text = offset_histogram(self.elements(offsets), buckets=5)
        counted = sum(
            int(re.search(r"\)\s+(\d+)", line).group(1))
            for line in text.splitlines()
        )
        assert counted == len(offsets)

    def test_monitoring_workload_clusters_in_declared_band(self):
        from repro.design.report import offset_histogram
        from repro.workloads import generate_monitoring

        workload = generate_monitoring(sensors=2, samples_per_sensor=50)
        text = offset_histogram(workload.relation.all_elements())
        # All offsets are negative (retroactive): no positive bucket bounds.
        for line in text.splitlines():
            bounds = line.split(")")[0]
            assert "+" not in bounds
