"""Tests for the design advisor and report rendering (E11)."""

import pytest

from repro.chronos.timestamp import Timestamp
from repro.core.taxonomy import EVENT_ISOLATED_LATTICE, INTER_INTERVAL_LATTICE
from repro.core.taxonomy.base import Stamped
from repro.design.advisor import Advisor
from repro.design.report import (
    lattice_levels,
    render_lattice_ascii,
    render_recommendation,
)
from repro.workloads import (
    generate_assignments,
    generate_excavation,
    generate_monitoring,
    generate_payroll,
)
from repro.workloads.payroll import generate_determined_deposits


def element(tt: int, vt: int) -> Stamped:
    return Stamped(tt_start=Timestamp(tt), vt=Timestamp(vt))


class TestAdvisorOnWorkloads:
    def test_monitoring_recommendation(self):
        workload = generate_monitoring(sensors=2, samples_per_sensor=40)
        recommendation = Advisor(margin=0.5).recommend_for_relation(workload.relation)
        assert recommendation.kind == "event"
        names = recommendation.declared_names
        assert any("retroactively bounded" in n for n in names)
        assert any("bounded-tt-window" in p for p in recommendation.payoffs)

    def test_payroll_recommendation(self):
        workload = generate_payroll(employees=4, months=6)
        recommendation = Advisor().recommend_for_relation(workload.relation)
        assert any("predictively bounded" in n for n in recommendation.declared_names)

    def test_determined_deposits_detected(self):
        workload = generate_determined_deposits(deposits=50)
        recommendation = Advisor().recommend_for_relation(workload.relation)
        assert "determined" in recommendation.declared_names
        assert any("need not be stored" in p for p in recommendation.payoffs)

    def test_excavation_recommendation(self):
        workload = generate_excavation(strata=20)
        recommendation = Advisor().recommend_for_relation(workload.relation)
        assert "globally non-increasing" in recommendation.declared_names
        assert any("descending" in p for p in recommendation.payoffs)

    def test_interval_recommendation(self):
        workload = generate_assignments(employees=3, weeks=10, record_on="weekend")
        recommendation = Advisor().recommend_for_relation(workload.relation)
        assert recommendation.kind == "interval"
        assert any("regular" in n for n in recommendation.declared_names)


class TestWidening:
    def test_margin_widens_bounds(self):
        elements = [element(100, 70), element(200, 195)]  # offsets -30..-5
        fitted = Advisor(margin=0.0).recommend(elements).declare[0]
        widened = Advisor(margin=1.0).recommend(elements).declare[0]
        assert fitted.max_delay.microseconds == 30_000_000
        assert widened.max_delay.microseconds == 60_000_000
        assert widened.min_delay.microseconds <= fitted.min_delay.microseconds

    def test_widened_declaration_still_satisfied(self):
        elements = [element(100, 95), element(200, 230), element(300, 300)]
        for margin in (0.0, 0.25, 1.0):
            recommendation = Advisor(margin=margin).recommend(elements)
            for spec in recommendation.declare:
                assert spec.check_extension(elements), (margin, spec.name)

    def test_degenerate_not_widened(self):
        elements = [element(5, 5), element(9, 9)]
        recommendation = Advisor(margin=2.0).recommend(elements)
        assert "degenerate" in recommendation.declared_names

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            Advisor(margin=-0.1)


class TestReports:
    def test_recommendation_rendering(self):
        workload = generate_monitoring(sensors=2, samples_per_sensor=20)
        recommendation = Advisor().recommend_for_relation(workload.relation)
        text = render_recommendation(recommendation, "plant")
        assert "Design analysis: plant" in text
        assert "observed" in text and "recommended" in text

    def test_lattice_levels_respect_edges(self):
        levels = lattice_levels(EVENT_ISOLATED_LATTICE)
        position = {
            name: depth for depth, names in enumerate(levels) for name in names
        }
        for parent, child in EVENT_ISOLATED_LATTICE.edges:
            assert position[parent] < position[child]

    def test_ascii_rendering_contains_all_nodes(self):
        text = render_lattice_ascii(INTER_INTERVAL_LATTICE)
        for node in INTER_INTERVAL_LATTICE.node_names:
            assert node in text
