"""Tests for the workload generators: determinism and guaranteed geometry.

Each generator models one of the paper's running examples; the test
checks (a) determinism under a fixed seed, (b) that the generated
stream satisfies the specializations the paper promises for that
application -- verified through fresh checker instances, independent of
the enforcement that already ran during generation.
"""

import pytest

from repro.chronos.duration import Duration
from repro.core.taxonomy import (
    Degenerate,
    DelayedRetroactive,
    EarlyPredictive,
    GloballyNonIncreasing,
    IntervalGloballyNonDecreasing,
    IntervalGloballySequential,
    PerPartition,
    Predictive,
    PredictivelyBounded,
    Retroactive,
    StronglyBounded,
    fit_determined,
)
from repro.workloads import (
    generate_assignments,
    generate_excavation,
    generate_general,
    generate_ledger,
    generate_monitoring,
    generate_orders,
    generate_payroll,
    generate_warnings,
)
from repro.workloads.payroll import generate_determined_deposits

DAY = 86_400
HOUR = 3_600


def signatures(workload):
    return [
        (e.tt_start.microseconds, e.vt, e.object_surrogate)
        for e in workload.relation.all_elements()
    ]


class TestDeterminism:
    @pytest.mark.parametrize(
        "generator",
        [
            generate_monitoring,
            generate_payroll,
            generate_assignments,
            generate_ledger,
            generate_orders,
            generate_excavation,
            generate_warnings,
            generate_general,
        ],
    )
    def test_same_seed_same_stream(self, generator):
        assert signatures(generator(seed=7)) == signatures(generator(seed=7))

    def test_different_seeds_differ(self):
        assert signatures(generate_monitoring(seed=1)) != signatures(
            generate_monitoring(seed=2)
        )


class TestMonitoring:
    def test_retroactive_with_minimum_delay(self):
        workload = generate_monitoring(
            sensors=3, samples_per_sensor=40, min_delay_seconds=30, max_delay_seconds=55
        )
        elements = workload.relation.all_elements()
        assert Retroactive().check_extension(elements)
        assert DelayedRetroactive(Duration(30)).check_extension(elements)
        # The 30s bound is tight: 29s would also pass, 56s would not.
        assert not DelayedRetroactive(Duration(56)).check_extension(elements)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            generate_monitoring(min_delay_seconds=50, max_delay_seconds=30)
        with pytest.raises(ValueError):
            generate_monitoring(period_seconds=10, max_delay_seconds=20)


class TestPayroll:
    def test_early_predictive(self):
        workload = generate_payroll(employees=5, months=6)
        elements = workload.relation.all_elements()
        assert Predictive().check_extension(elements)
        assert EarlyPredictive(Duration(3, "day")).check_extension(elements)

    def test_determined_deposits_recoverable(self):
        workload = generate_determined_deposits(deposits=80)
        elements = workload.relation.all_elements()
        assert Predictive().check_extension(elements)
        fitted = fit_determined(elements)
        assert fitted is not None
        assert "ceil" in fitted.mapping.name


class TestAssignments:
    def test_weekend_recording_is_per_surrogate_sequential(self):
        workload = generate_assignments(employees=4, weeks=12, record_on="weekend")
        elements = workload.relation.all_elements()
        assert PerPartition(IntervalGloballySequential()).check_extension(elements)

    def test_thursday_recording_is_non_decreasing_not_sequential(self):
        workload = generate_assignments(employees=4, weeks=12, record_on="thursday")
        elements = workload.relation.all_elements()
        assert PerPartition(IntervalGloballyNonDecreasing()).check_extension(elements)
        assert not PerPartition(IntervalGloballySequential()).check_extension(elements)

    def test_record_on_validated(self):
        with pytest.raises(ValueError):
            generate_assignments(record_on="friday")


class TestLedgerOrdersExcavationWarnings:
    def test_ledger_strongly_bounded(self):
        workload = generate_ledger(entries=120, past_bound_days=5, future_bound_days=3)
        spec = StronglyBounded(Duration(5, "day"), Duration(3, "day"))
        assert spec.check_extension(workload.relation.all_elements())

    def test_orders_predictively_bounded(self):
        workload = generate_orders(orders=150, horizon_days=30)
        spec = PredictivelyBounded(Duration(30, "day"))
        elements = workload.relation.all_elements()
        assert spec.check_extension(elements)
        # Not retroactive: pending orders do look into the future.
        assert not Retroactive().check_extension(elements)

    def test_excavation_non_increasing(self):
        workload = generate_excavation(strata=25)
        elements = workload.relation.all_elements()
        assert GloballyNonIncreasing().check_extension(elements)
        assert Retroactive().check_extension(elements)

    def test_warnings_early_predictive(self):
        workload = generate_warnings(warnings=60, min_notice_hours=6)
        assert EarlyPredictive(Duration(6, "hour")).check_extension(
            workload.relation.all_elements()
        )

    def test_warning_bounds_validated(self):
        with pytest.raises(ValueError):
            generate_warnings(min_notice_hours=0)


class TestGeneral:
    def test_unrestricted_and_includes_deletions(self):
        workload = generate_general(inserts=200, delete_rate=0.3)
        elements = workload.relation.all_elements()
        assert any(not e.is_current for e in elements)
        # Not degenerate, not one-sided.
        assert not Degenerate().check_extension(elements)
        assert not Retroactive().check_extension(elements)
        assert not Predictive().check_extension(elements)
