"""The metrics registry: instruments, concurrency, snapshots, gating."""

import json
import threading

import pytest

from repro.chronos.clock import ManualTimer
from repro.observability import metrics
from repro.observability.metrics import Counter, Gauge, Histogram, MetricsRegistry


@pytest.fixture(autouse=True)
def _metrics_off():
    """Leave the process-global gate the way each test found it."""
    was = metrics.enabled()
    yield
    (metrics.enable if was else metrics.disable)()
    metrics.reset()


class TestCounter:
    def test_counts_up(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_concurrent_increments_do_not_lose_updates(self):
        counter = Counter("c")
        increments_per_thread = 10_000

        def hammer():
            for _ in range(increments_per_thread):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8 * increments_per_thread


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.add(-2.5)
        assert gauge.value == 7.5


class TestHistogram:
    def test_exact_aggregates(self):
        histogram = Histogram("h")
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 6.0
        summary = histogram.to_dict()
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_nearest_rank_percentiles(self):
        histogram = Histogram("h")
        for value in range(1, 101):  # 1..100
            histogram.observe(value)
        assert histogram.percentile(50) == 50
        assert histogram.percentile(90) == 90
        assert histogram.percentile(99) == 99
        assert histogram.percentile(100) == 100
        # nearest-rank on a tiny sample: ceil(q/100 * n)
        small = Histogram("s")
        for value in (10.0, 20.0, 30.0):
            small.observe(value)
        assert small.percentile(50) == 20.0
        assert small.percentile(34) == 20.0
        assert small.percentile(33) == 10.0

    def test_percentile_bounds(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(0)
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_empty_percentile_errors(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(50)

    def test_empty_to_dict(self):
        assert Histogram("h").to_dict() == {"count": 0, "sum": 0.0}

    def test_count_stays_exact_beyond_sample_limit(self):
        histogram = Histogram("h")
        for value in range(10_500):
            histogram.observe(value)
        assert histogram.count == 10_500
        assert histogram.to_dict()["max"] == 10_499

    def test_concurrent_observations(self):
        histogram = Histogram("h")

        def hammer():
            for value in range(1_000):
                histogram.observe(value)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == 4_000


class TestRegistry:
    def test_instruments_are_memoized(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_concurrent_creation_yields_one_instrument(self):
        registry = MetricsRegistry()
        seen = []

        def create():
            for i in range(200):
                seen.append(registry.counter(f"name-{i % 10}"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        by_name = {}
        for counter in seen:
            by_name.setdefault(counter.name, set()).add(id(counter))
        assert all(len(ids) == 1 for ids in by_name.values())

    def test_snapshot_is_isolated_from_later_updates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(5)
        before = registry.snapshot()
        registry.counter("hits").inc(100)
        assert before["counters"]["hits"] == 5
        assert registry.snapshot()["counters"]["hits"] == 105

    def test_snapshot_json_round_trips(self):
        registry = MetricsRegistry(timer_source=ManualTimer())
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        with registry.timer("t"):
            registry.timer_source.advance(0.25)
        decoded = json.loads(registry.snapshot_json())
        assert decoded["counters"] == {"c": 3}
        assert decoded["gauges"] == {"g": 1.5}
        assert decoded["histograms"]["t"]["count"] == 1
        assert decoded["histograms"]["t"]["sum"] == 0.25

    def test_timer_records_seconds(self):
        timer_source = ManualTimer()
        registry = MetricsRegistry(timer_source=timer_source)
        with registry.timer("op") as timer:
            timer_source.advance(1.5)
        assert timer.elapsed == 1.5
        assert registry.histogram("op").sum == 1.5

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.clear()
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestGlobalGate:
    def test_enable_disable(self):
        metrics.disable()
        assert not metrics.enabled()
        metrics.enable()
        assert metrics.enabled()

    def test_enabled_scope_restores_prior_state(self):
        metrics.disable()
        with metrics.enabled_scope() as registry:
            assert metrics.enabled()
            assert registry is metrics.registry()
        assert not metrics.enabled()

    def test_enabled_scope_fresh_clears(self):
        metrics.registry().counter("stale").inc()
        with metrics.enabled_scope(fresh=True) as registry:
            assert "stale" not in registry.snapshot()["counters"]
