"""Span trees: nesting, timing determinism, rendering."""

import pytest

from repro.chronos.clock import ManualTimer
from repro.observability.tracing import QueryTrace


def test_nested_spans_form_a_tree():
    trace = QueryTrace(timer=ManualTimer())
    with trace.span("plan"):
        with trace.span("rule-1"):
            pass
        with trace.span("rule-2"):
            pass
    with trace.span("execute"):
        pass
    assert [span.name for span in trace.roots] == ["plan", "execute"]
    assert [child.name for child in trace.roots[0].children] == ["rule-1", "rule-2"]
    assert trace.span_count() == 4
    assert [span.name for span in trace.all_spans()] == [
        "plan",
        "rule-1",
        "rule-2",
        "execute",
    ]


def test_durations_are_deterministic_under_manual_timer():
    timer = ManualTimer()
    trace = QueryTrace(timer=timer)
    with trace.span("outer"):
        timer.advance(0.5)
        with trace.span("inner"):
            timer.advance(0.25)
        timer.advance(0.125)
    outer, inner = trace.roots[0], trace.roots[0].children[0]
    assert outer.duration_seconds == 0.875
    assert inner.duration_seconds == 0.25


def test_open_span_has_no_duration():
    trace = QueryTrace(timer=ManualTimer())
    context = trace.span("open")
    span = context.__enter__()
    with pytest.raises(ValueError):
        _ = span.duration_seconds
    context.__exit__(None, None, None)
    assert span.duration_seconds == 0.0


def test_annotate_merges_attributes():
    trace = QueryTrace(timer=ManualTimer())
    with trace.span("plan", phase="start") as span:
        span.annotate(strategy="merge-join", examined=7)
    assert span.attributes == {"phase": "start", "strategy": "merge-join", "examined": 7}


def test_out_of_order_close_is_an_error():
    trace = QueryTrace(timer=ManualTimer())
    outer = trace.span("outer")
    inner = trace.span("inner")
    outer.__enter__()
    inner.__enter__()
    with pytest.raises(ValueError):
        trace._close(outer._span)


def test_render_shows_attributes_and_millis():
    timer = ManualTimer()
    trace = QueryTrace(timer=timer)
    with trace.span("execute", strategy="engine-index"):
        timer.advance(0.002)
    rendered = trace.render()
    assert rendered == "- execute [strategy=engine-index]: 2.000 ms"


def test_to_dict_is_json_shaped():
    timer = ManualTimer()
    trace = QueryTrace(timer=timer)
    with trace.span("a"):
        timer.advance(1.0)
        with trace.span("b"):
            pass
    payload = trace.to_dict()
    assert payload["spans"][0]["name"] == "a"
    assert payload["spans"][0]["duration_seconds"] == 1.0
    assert payload["spans"][0]["children"][0]["name"] == "b"
