"""Engine, planner, and constraint call sites report the right counters."""

import os
import tempfile

import pytest

from repro.chronos.clock import SimulatedWallClock
from repro.chronos.timestamp import Timestamp
from repro.observability import metrics
from repro.query import Planner, Scan, ValidTimeslice
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation
from repro.storage.logfile import LogFileEngine
from repro.storage.sqlite_backend import SQLiteEngine


@pytest.fixture
def registry():
    with metrics.enabled_scope(fresh=True) as reg:
        yield reg


def build(engine=None, specializations=()):
    schema = TemporalSchema(name="r", specializations=list(specializations))
    clock = SimulatedWallClock(start=0)
    return (
        TemporalRelation(schema, clock=clock, keep_backlog=False, engine=engine),
        clock,
    )


def rows(count):
    return [("o", Timestamp(10 * i), {}) for i in range(count)]


class TestMemoryEngine:
    def test_insert_and_scan_counters(self, registry):
        relation, clock = build()
        for i in range(5):
            clock.advance_to(Timestamp(10 * i))
            relation.insert("o", Timestamp(10 * i), {})
        list(relation.engine.scan())
        counters = registry.snapshot()["counters"]
        assert counters["relation.inserts"] == 5
        assert counters["storage.memory.appends"] == 5
        assert counters["storage.memory.rows_scanned"] == 5

    def test_batch_counters(self, registry):
        relation, _clock = build()
        relation.append_many(rows(100))
        counters = registry.snapshot()["counters"]
        assert counters["relation.batches"] == 1
        assert counters["relation.batch_rows"] == 100
        assert counters["storage.memory.batch_appends"] == 1
        assert counters["storage.memory.rows_appended"] == 100

    def test_vt_index_hit_and_miss(self, registry):
        relation, _clock = build()
        relation.append_many(rows(10))
        list(relation.engine.valid_at(Timestamp(50)))
        counters = registry.snapshot()["counters"]
        assert counters.get("storage.memory.vt_index_hits", 0) == 1
        list(relation.engine.valid_at(Timestamp(50), as_of_tt=Timestamp(5)))
        counters = registry.snapshot()["counters"]
        assert counters.get("storage.memory.vt_index_misses", 0) == 1


class TestSQLiteEngine:
    def test_batch_is_one_commit(self, registry):
        relation, _clock = build(engine=SQLiteEngine())
        relation.append_many(rows(50))
        counters = registry.snapshot()["counters"]
        assert counters["storage.sqlite.commits"] == 1
        assert counters["storage.sqlite.rows_appended"] == 50

    def test_scan_counts_rows(self, registry):
        relation, _clock = build(engine=SQLiteEngine())
        relation.append_many(rows(7))
        list(relation.engine.scan())
        assert registry.snapshot()["counters"]["storage.sqlite.rows_scanned"] == 7


class TestLogFileEngine:
    def test_batch_is_one_fsync(self, registry):
        with tempfile.TemporaryDirectory() as tmp:
            engine = LogFileEngine(os.path.join(tmp, "r.jsonl"))
            relation, _clock = build(engine=engine)
            relation.append_many(rows(20))
            counters = registry.snapshot()["counters"]
            assert counters["storage.logfile.fsyncs"] == 1
            assert counters["storage.logfile.bytes_written"] > 0
            engine.close()


class TestPlannerCounters:
    def test_plan_and_execute_counters(self, registry):
        relation, _clock = build(specializations=["degenerate"])
        relation.append_many([("o", Timestamp(0), {})])
        # degenerate requires vt == tt; rebuild rows accordingly
        plan = Planner(relation).plan(ValidTimeslice(Scan(relation), Timestamp(0)))
        plan.execute()
        counters = registry.snapshot()["counters"]
        assert counters["query.planned.degenerate-rollback"] == 1
        assert counters["query.plans.degenerate-rollback"] == 1
        assert "query.elements_examined" in counters
        assert "query.elements_returned" in counters
        histograms = registry.snapshot()["histograms"]
        assert histograms["query.execute_seconds.degenerate-rollback"]["count"] == 1


class TestConstraintCounters:
    def test_batch_checks_and_shadow_swap(self, registry):
        relation, _clock = build(specializations=["retroactive"])
        relation.append_many(
            [("o", Timestamp(-100 + i), {}) for i in range(10)]
        )
        counters = registry.snapshot()["counters"]
        assert counters["constraints.checks"] == 10  # one monitor x 10 elements
        assert counters["constraints.shadow_swaps"] == 1
        assert counters.get("constraints.violations", 0) == 0

    def test_per_element_checks(self, registry):
        relation, clock = build(specializations=["retroactive"])
        clock.advance_to(Timestamp(100))
        relation.insert("o", Timestamp(50), {})
        assert registry.snapshot()["counters"]["constraints.checks"] == 1


class TestDisabledIsFree:
    def test_nothing_recorded_when_disabled(self):
        metrics.disable()
        before = metrics.registry().snapshot()
        relation, _clock = build()
        relation.append_many(rows(10))
        assert metrics.registry().snapshot() == before
