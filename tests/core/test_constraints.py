"""Unit tests for constraint enforcement (E10)."""

import warnings

import pytest

from repro.chronos.duration import Duration
from repro.chronos.timestamp import Timestamp
from repro.core.constraints import ConstraintSet, ConstraintViolation, EnforcementMode
from repro.core.taxonomy.base import Stamped
from repro.core.taxonomy.event_inter import GloballyNonDecreasing
from repro.core.taxonomy.event_isolated import DelayedRetroactive, Retroactive


def element(tt: int, vt: int) -> Stamped:
    return Stamped(tt_start=Timestamp(tt), vt=Timestamp(vt))


class TestRejectMode:
    def test_compliant_updates_pass(self):
        constraints = ConstraintSet([Retroactive()])
        assert constraints.observe(element(10, 5)) == []

    def test_violation_raises_with_details(self):
        constraints = ConstraintSet([Retroactive()])
        with pytest.raises(ConstraintViolation) as excinfo:
            constraints.observe(element(10, 20))
        assert "retroactive" in str(excinfo.value)
        assert len(excinfo.value.violations) == 1

    def test_multiple_constraints_all_checked(self):
        constraints = ConstraintSet([Retroactive(), GloballyNonDecreasing()])
        constraints.observe(element(10, 5))
        with pytest.raises(ConstraintViolation) as excinfo:
            constraints.observe(element(20, 30))  # not retroactive, but increasing
        assert len(excinfo.value.violations) == 1


class TestWarnAndRecordModes:
    def test_warn_mode_warns_and_records(self):
        constraints = ConstraintSet([Retroactive()], mode=EnforcementMode.WARN)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            found = constraints.observe(element(10, 20))
        assert len(found) == 1
        assert len(caught) == 1
        assert constraints.recorded == found

    def test_record_mode_is_silent(self):
        constraints = ConstraintSet([Retroactive()], mode=EnforcementMode.RECORD)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            constraints.observe(element(10, 20))
        assert not caught
        assert len(constraints.recorded) == 1

    def test_record_mode_accumulates(self):
        constraints = ConstraintSet([Retroactive()], mode=EnforcementMode.RECORD)
        constraints.observe(element(10, 20))
        constraints.observe(element(20, 30))
        constraints.observe(element(30, 25))  # compliant
        assert len(constraints.recorded) == 2


class TestStatefulness:
    def test_inter_element_state_carries_across_updates(self):
        constraints = ConstraintSet([GloballyNonDecreasing()])
        constraints.observe(element(1, 100))
        with pytest.raises(ConstraintViolation):
            constraints.observe(element(2, 50))

    def test_reset_clears_state(self):
        constraints = ConstraintSet([GloballyNonDecreasing()])
        constraints.observe(element(1, 100))
        constraints.reset()
        assert constraints.observe(element(2, 50)) == []

    def test_check_all_does_not_disturb_live_monitors(self):
        constraints = ConstraintSet([GloballyNonDecreasing()])
        constraints.observe(element(1, 100))
        constraints.check_all([element(5, 1), element(6, 2)])
        # Live monitor still remembers vt=100.
        with pytest.raises(ConstraintViolation):
            constraints.observe(element(2, 50))

    def test_check_all_reports_batch_violations(self):
        constraints = ConstraintSet([DelayedRetroactive(Duration(10))])
        found = constraints.check_all([element(100, 95), element(200, 150)])
        assert len(found) == 1


class TestMisc:
    def test_empty_set(self):
        constraints = ConstraintSet()
        assert constraints.is_empty
        assert constraints.observe(element(1, 10**6)) == []

    def test_repr_names_constraints(self):
        constraints = ConstraintSet([Retroactive()])
        assert "retroactive" in repr(constraints)
        assert "reject" in repr(constraints)
