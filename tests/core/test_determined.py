"""Unit tests for determined relations and mapping functions (Section 3.1)."""


from repro.chronos.duration import Duration
from repro.chronos.timestamp import Timestamp
from repro.core.taxonomy.base import Stamped
from repro.core.taxonomy.determined import (
    Determined,
    DeterminedAs,
    MappingFunction,
    fixed_delay,
    floor_to_unit,
    next_unit_offset,
    predictively_determined,
    retroactively_determined,
    strongly_predictively_bounded_determined,
    strongly_retroactively_bounded_determined,
)
from repro.core.taxonomy.event_isolated import StronglyBounded


def element(tt: int, vt: int) -> Stamped:
    return Stamped(tt_start=Timestamp(tt), vt=Timestamp(vt))


HOUR = 3600
DAY = 86_400


class TestMappingFunctions:
    def test_m1_fixed_delay(self):
        mapping = fixed_delay(Duration(30))
        assert mapping(element(100, 0)) == Timestamp(130)

    def test_m1_negative_delay(self):
        mapping = fixed_delay(Duration(-30))
        assert mapping(element(100, 0)) == Timestamp(70)

    def test_m2_most_recent_hour(self):
        mapping = floor_to_unit("hour")
        assert mapping(element(HOUR + 61, 0)) == Timestamp(1, "hour")
        assert mapping(element(HOUR, 0)) == Timestamp(1, "hour")

    def test_m3_next_8am(self):
        mapping = next_unit_offset("day", Duration(8, "hour"))
        # Stored mid-day: valid from 8am the next day.
        assert mapping(element(DAY + 100, 0)) == Timestamp(2 * DAY + 8 * HOUR)

    def test_m3_on_boundary_uses_next_boundary(self):
        mapping = next_unit_offset("day", Duration(8, "hour"))
        assert mapping(element(DAY, 0)) == Timestamp(2 * DAY + 8 * HOUR)

    def test_repr_is_informative(self):
        assert "floor" in repr(floor_to_unit("hour"))


class TestDetermined:
    def test_accepts_when_mapping_matches(self):
        spec = Determined(fixed_delay(Duration(10)))
        assert spec.check_element(element(100, 110))
        assert not spec.check_element(element(100, 111))

    def test_failure_message_shows_expected(self):
        spec = Determined(fixed_delay(Duration(10)))
        message = spec.element_failure(element(100, 0))
        assert "differs from" in message

    def test_mapping_may_use_attributes(self):
        def from_attribute(elem):
            return Timestamp(elem.attributes["effective"])

        spec = Determined(MappingFunction("attr", from_attribute))
        elem = Stamped(
            tt_start=Timestamp(5), vt=Timestamp(99), attributes={"effective": 99}
        )
        assert spec.check_element(elem)


class TestDeterminedAs:
    def test_retroactively_determined(self):
        # "valid from the beginning of the most recent hour"
        spec = retroactively_determined(floor_to_unit("hour"))
        assert spec.check_element(element(HOUR + 30, HOUR))
        # Mapping matches but is not retroactive: impossible for floor,
        # so use a forward mapping to exercise the second conjunct.
        forward = retroactively_determined(fixed_delay(Duration(10)))
        assert not forward.check_element(element(100, 110))

    def test_predictively_determined(self):
        # "valid from the next closest 8:00 a.m." (bank deposits)
        spec = predictively_determined(next_unit_offset("day", Duration(8, "hour")))
        stored = DAY + 3 * HOUR
        valid = 2 * DAY + 8 * HOUR
        assert spec.check_element(element(stored, valid))
        assert not spec.check_element(element(stored, valid + 1))

    def test_strongly_retroactively_bounded_determined(self):
        spec = strongly_retroactively_bounded_determined(
            floor_to_unit("hour"), Duration(1, "hour")
        )
        assert spec.check_element(element(HOUR + 30, HOUR))

    def test_strongly_predictively_bounded_determined(self):
        mapping = next_unit_offset("hour", Duration(0))
        spec = strongly_predictively_bounded_determined(mapping, Duration(1, "hour"))
        assert spec.check_element(element(HOUR + 30, 2 * HOUR))
        # Out of the bound: mapping lands more than an hour ahead.
        far_mapping = fixed_delay(Duration(2, "hour"))
        far = strongly_predictively_bounded_determined(far_mapping, Duration(1, "hour"))
        assert not far.check_element(element(0, 2 * HOUR))

    def test_name_combines_base_and_determined(self):
        spec = DeterminedAs(StronglyBounded(Duration(5), Duration(5)), fixed_delay(Duration(0)))
        assert spec.name == "strongly bounded determined"

    def test_failure_distinguishes_mapping_from_bound(self):
        spec = retroactively_determined(fixed_delay(Duration(10)))
        mapping_failure = spec.element_failure(element(100, 0))
        assert "differs from" in mapping_failure
        bound_failure = spec.element_failure(element(100, 110))
        assert "violates retroactive" in bound_failure
