"""Unit and property tests for specialization inference (E11)."""

import pytest
from hypothesis import given, settings

from repro.chronos.duration import Duration
from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.core.taxonomy.base import Stamped
from repro.core.taxonomy.determined import floor_to_unit
from repro.core.taxonomy.event_isolated import (
    Degenerate,
    DelayedStronglyRetroactivelyBounded,
    EarlyStronglyPredictivelyBounded,
    StronglyBounded,
    StronglyPredictivelyBounded,
    StronglyRetroactivelyBounded,
)
from repro.core.taxonomy.inference import (
    classify,
    fit_determined,
    fit_event_inter,
    fit_event_isolated,
    fit_event_isolated_open,
    fit_interval,
    offset_statistics,
)

from tests.conftest import event_extensions, interval_extensions


def element(tt: int, vt: int) -> Stamped:
    return Stamped(tt_start=Timestamp(tt), vt=Timestamp(vt))


class TestOffsetStatistics:
    def test_basic(self):
        stats = offset_statistics([element(10, 5), element(20, 25)])
        assert stats.count == 2
        assert stats.minimum == -5_000_000 and stats.maximum == 5_000_000

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            offset_statistics([])

    def test_constant_and_zero(self):
        assert offset_statistics([element(3, 3)]).all_zero
        assert offset_statistics([element(3, 5), element(9, 11)]).constant


class TestFitEventIsolated:
    def test_degenerate(self):
        fitted = fit_event_isolated([element(5, 5), element(9, 9)])
        assert isinstance(fitted, Degenerate)

    def test_strictly_retroactive_sample(self):
        fitted = fit_event_isolated([element(100, 70), element(200, 195)])
        assert isinstance(fitted, DelayedStronglyRetroactivelyBounded)
        assert fitted.min_delay == Duration(5)
        assert fitted.max_delay == Duration(30)

    def test_retroactive_touching_zero(self):
        fitted = fit_event_isolated([element(100, 100), element(200, 170)])
        assert isinstance(fitted, StronglyRetroactivelyBounded)
        assert fitted.bound == Duration(30)

    def test_predictive_side(self):
        fitted = fit_event_isolated([element(0, 3), element(10, 40)])
        assert isinstance(fitted, EarlyStronglyPredictivelyBounded)
        assert fitted.min_lead == Duration(3)
        assert fitted.max_lead == Duration(30)

    def test_predictive_touching_zero(self):
        fitted = fit_event_isolated([element(0, 0), element(10, 40)])
        assert isinstance(fitted, StronglyPredictivelyBounded)

    def test_mixed(self):
        fitted = fit_event_isolated([element(100, 95), element(200, 210)])
        assert isinstance(fitted, StronglyBounded)
        assert fitted.past_bound == Duration(5)
        assert fitted.future_bound == Duration(10)

    @settings(max_examples=80)
    @given(event_extensions(min_size=1, max_size=12))
    def test_fitted_always_satisfied(self, elements):
        assert fit_event_isolated(elements).check_extension(elements)

    @settings(max_examples=80)
    @given(event_extensions(min_size=1, max_size=12))
    def test_open_fit_always_satisfied(self, elements):
        assert fit_event_isolated_open(elements).check_extension(elements)

    def test_open_fit_prefers_one_sided(self):
        from repro.core.taxonomy.event_isolated import DelayedRetroactive

        fitted = fit_event_isolated_open([element(100, 70), element(200, 195)])
        assert isinstance(fitted, DelayedRetroactive)
        assert fitted.delay == Duration(5)


class TestFitEventInter:
    def test_recovers_planted_regularity(self):
        elements = [element(tt, tt - 3) for tt in (0, 60, 120, 300)]
        fit = fit_event_inter(elements)
        names = {spec.name for spec in fit.all}
        assert "transaction time event regular" in names
        assert "temporal event regular" in names
        assert "globally non-decreasing" in names

    def test_strict_detection(self):
        elements = [element(tt, tt + 5) for tt in (0, 60, 120, 180)]
        names = {spec.name for spec in fit_event_inter(elements).all}
        assert "strict transaction time event regular" in names
        assert "strict temporal event regular" in names

    def test_trivial_unit_suppressed(self):
        # Coprime gaps: gcd 1 microsecond carries no information.
        elements = [element(0, 0), element(1, 7), element(3, 11)]
        regular = [s for s in fit_event_inter(elements).regularities]
        assert regular == []

    @settings(max_examples=60)
    @given(event_extensions(min_size=1, max_size=10))
    def test_everything_reported_actually_holds(self, elements):
        for spec in fit_event_inter(elements).all:
            assert spec.check_extension(elements), spec.name


class TestFitDetermined:
    def test_recovers_fixed_delay(self):
        elements = [element(tt, tt + 30) for tt in (5, 17, 90)]
        fitted = fit_determined(elements)
        assert fitted is not None
        assert all(fitted.check_element(e) for e in elements)

    def test_recovers_floor_template(self):
        mapping = floor_to_unit("minute")
        elements = [
            Stamped(tt_start=Timestamp(tt), vt=mapping(element(tt, 0)))
            for tt in (61, 119, 245)
        ]
        fitted = fit_determined(elements)
        assert fitted is not None
        assert "floor" in fitted.mapping.name

    def test_recovers_next_boundary_template(self):
        from repro.core.taxonomy.determined import next_unit_offset

        mapping = next_unit_offset("hour", Duration(5, "minute"))
        elements = [
            Stamped(tt_start=Timestamp(tt), vt=mapping(element(tt, 0)))
            for tt in (10, 3700, 7300)
        ]
        fitted = fit_determined(elements)
        assert fitted is not None
        assert all(fitted.check_element(e) for e in elements)

    def test_undetermined_returns_none(self):
        elements = [element(0, 3), element(10, 90), element(20, 7)]
        assert fit_determined(elements) is None

    @settings(max_examples=60)
    @given(event_extensions(min_size=1, max_size=10))
    def test_fit_is_sound_when_found(self, elements):
        fitted = fit_determined(elements)
        if fitted is not None:
            assert fitted.check_extension(elements)


class TestFitInterval:
    def test_fits_regular_weekly_intervals(self):
        week = 7 * 86_400
        elements = [
            Stamped(
                tt_start=Timestamp(tt),
                vt=Interval(Timestamp(tt), Timestamp(tt + week)),
            )
            for tt in (0, week, 2 * week)
        ]
        fit = fit_interval(elements)
        names = {spec.name for spec in fit.all}
        assert "strict valid time interval regular" in names
        assert fit.successive is not None and fit.successive.name == "globally contiguous"

    @settings(max_examples=60)
    @given(interval_extensions(min_size=1, max_size=8))
    def test_everything_reported_actually_holds(self, elements):
        for spec in fit_interval(elements).all:
            assert spec.check_extension(elements), spec.name


class TestClassify:
    def test_dispatches_on_stamp_kind(self):
        event_report = classify([element(1, 1)])
        assert event_report.kind == "event"
        interval_report = classify(
            [Stamped(tt_start=Timestamp(1), vt=Interval(Timestamp(0), Timestamp(5)))]
        )
        assert interval_report.kind == "interval"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            classify([])

    def test_report_lists_specializations(self):
        report = classify([element(tt, tt) for tt in (0, 10, 20)])
        names = [spec.name for spec in report.specializations()]
        assert "degenerate" in names
        assert any("determined" in n for n in names)

    @settings(max_examples=40)
    @given(event_extensions(min_size=1, max_size=10))
    def test_every_reported_specialization_holds(self, elements):
        report = classify(elements)
        for spec in report.specializations():
            assert spec.check_extension(elements), spec.name
