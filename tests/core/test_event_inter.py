"""Unit and property tests for the Section 3.2 inter-event taxonomy."""

import pytest
from hypothesis import given

from repro.chronos.duration import Duration
from repro.chronos.timestamp import Timestamp
from repro.core.taxonomy.base import Stamped
from repro.core.taxonomy.event_inter import (
    CombinedEventRegular,
    GloballyNonDecreasing,
    GloballyNonIncreasing,
    GloballySequential,
    StrictTemporalEventRegular,
    StrictTransactionTimeEventRegular,
    StrictValidTimeEventRegular,
    TemporalEventRegular,
    TransactionTimeEventRegular,
    ValidTimeEventRegular,
)

from tests.conftest import event_extensions


def extension(pairs):
    return [Stamped(tt_start=Timestamp(tt), vt=Timestamp(vt)) for tt, vt in pairs]


class TestOrderings:
    def test_sequential_accepts_paced_stream(self):
        elements = extension([(10, 5), (20, 15), (30, 29)])
        assert GloballySequential().check_extension(elements)

    def test_sequential_rejects_out_of_pace(self):
        # Second event's valid time precedes the first's storage time.
        elements = extension([(10, 5), (20, 8)])
        assert not GloballySequential().check_extension(elements)

    def test_sequential_rejects_future_valid_time_overlap(self):
        # First element predicts vt=50; next element starts before that.
        elements = extension([(10, 50), (20, 30)])
        assert not GloballySequential().check_extension(elements)

    def test_non_decreasing(self):
        assert GloballyNonDecreasing().check_extension(extension([(1, 5), (2, 5), (3, 9)]))
        assert not GloballyNonDecreasing().check_extension(extension([(1, 5), (2, 4)]))

    def test_non_increasing_archeology(self):
        # Progressively earlier periods as excavation proceeds.
        elements = extension([(1, -1000), (2, -2500), (3, -2500), (4, -4000)])
        assert GloballyNonIncreasing().check_extension(elements)
        assert not GloballyNonIncreasing().check_extension(extension([(1, 5), (2, 6)]))

    @given(event_extensions(min_size=2, max_size=10))
    def test_sequential_implies_non_decreasing(self, elements):
        # The Figure 3 edge, verified on arbitrary extensions.
        if GloballySequential().check_extension(elements):
            assert GloballyNonDecreasing().check_extension(elements)

    @given(event_extensions(min_size=1, max_size=8))
    def test_pairwise_definition_equivalence(self, elements):
        """The O(1) monitors agree with the paper's quantified definitions."""
        ordered = sorted(elements, key=lambda e: e.tt_start.microseconds)

        def naive_sequential():
            for i, first in enumerate(ordered):
                for second in ordered[i + 1 :]:
                    if not max(first.tt_start, first.vt) <= min(second.tt_start, second.vt):
                        return False
            return True

        def naive_monotone(op):
            for i, first in enumerate(ordered):
                for second in ordered[i + 1 :]:
                    if not op(first.vt, second.vt):
                        return False
            return True

        assert GloballySequential().check_extension(elements) == naive_sequential()
        assert GloballyNonDecreasing().check_extension(elements) == naive_monotone(
            lambda a, b: a <= b
        )
        assert GloballyNonIncreasing().check_extension(elements) == naive_monotone(
            lambda a, b: a >= b
        )


class TestRegularity:
    def test_tt_regular_multiples_not_evenly_spaced(self):
        # Gaps of 10 and 30: multiples of 10, not evenly spaced -- fine.
        elements = extension([(0, 1), (10, 2), (40, 3)])
        assert TransactionTimeEventRegular(Duration(10)).check_extension(elements)
        assert not TransactionTimeEventRegular(Duration(20)).check_extension(elements)

    def test_vt_regular(self):
        elements = extension([(1, 0), (2, 60), (3, 180)])
        assert ValidTimeEventRegular(Duration(60)).check_extension(elements)
        assert not ValidTimeEventRegular(Duration(100)).check_extension(elements)

    def test_vt_regular_expresses_granularity(self):
        # One-second granularity == vt event regular with a 1s unit.
        elements = extension([(1, 5), (2, 9), (3, 2)])
        assert ValidTimeEventRegular(Duration(1)).check_extension(elements)

    def test_temporal_regular_requires_same_k(self):
        # Same multiplier in both dimensions: constant offset vt - tt.
        good = extension([(0, 100), (10, 110), (30, 130)])
        assert TemporalEventRegular(Duration(10)).check_extension(good)
        bad = extension([(0, 100), (10, 120)])  # tt k=1, vt k=2
        assert not TemporalEventRegular(Duration(10)).check_extension(bad)

    def test_gcd_erratum(self):
        """The paper's 28s/6s => 2s gcd remark (Section 3.2).

        Under the same-k definition the implication FAILS; under the
        independent-k reading (CombinedEventRegular) it holds.  Recorded
        as a reproduction finding in EXPERIMENTS.md (E3).
        """
        elements = extension([(0, 0), (28, 6)])
        assert TransactionTimeEventRegular(Duration(28)).check_extension(elements)
        assert ValidTimeEventRegular(Duration(6)).check_extension(elements)
        assert not TemporalEventRegular(Duration(2)).check_extension(elements)
        assert CombinedEventRegular(Duration(2)).check_extension(elements)

    def test_zero_unit_requires_identical_stamps(self):
        same = extension([(5, 9), (5, 9)])
        assert TransactionTimeEventRegular(Duration(0)).check_extension(same)
        assert not TransactionTimeEventRegular(Duration(0)).check_extension(
            extension([(5, 9), (6, 9)])
        )

    def test_calendric_unit_rejected(self):
        from repro.chronos.duration import CalendricDuration

        with pytest.raises(TypeError):
            TransactionTimeEventRegular(CalendricDuration(months=1))


class TestStrictRegularity:
    def test_strict_tt_regular(self):
        good = extension([(0, 1), (10, 2), (20, 3)])
        assert StrictTransactionTimeEventRegular(Duration(10)).check_extension(good)
        gap = extension([(0, 1), (10, 2), (40, 3)])
        assert not StrictTransactionTimeEventRegular(Duration(10)).check_extension(gap)

    def test_strict_vt_regular_out_of_order_arrival(self):
        # Valid times form 0, 10, 20 but arrive as 0, 20, 10.
        good = extension([(1, 0), (2, 20), (3, 10)])
        assert StrictValidTimeEventRegular(Duration(10)).check_extension(good)

    def test_strict_vt_regular_rejects_duplicates(self):
        dup = extension([(1, 0), (2, 0)])
        assert not StrictValidTimeEventRegular(Duration(10)).check_extension(dup)

    def test_strict_vt_regular_rejects_wrong_gap(self):
        assert not StrictValidTimeEventRegular(Duration(10)).check_extension(
            extension([(1, 0), (2, 25)])
        )

    def test_strict_temporal_regular(self):
        good = extension([(0, 100), (10, 110), (20, 120)])
        assert StrictTemporalEventRegular(Duration(10)).check_extension(good)
        assert not StrictTemporalEventRegular(Duration(10)).check_extension(
            extension([(0, 100), (10, 120)])
        )

    def test_strict_combination_does_not_imply_strict_temporal(self):
        """Section 3.2: "For the strict case, however, valid and
        transaction time event regularity does not imply temporal event
        regularity."  Witness: same unit, offset drifting."""
        elements = extension([(0, 10), (10, 0), (20, 20)])
        # vt sorted: 0, 10, 20 -> strict vt regular with unit 10.
        assert StrictTransactionTimeEventRegular(Duration(10)).check_extension(elements)
        assert StrictValidTimeEventRegular(Duration(10)).check_extension(elements)
        assert not StrictTemporalEventRegular(Duration(10)).check_extension(elements)

    def test_strict_requires_positive_unit(self):
        with pytest.raises(ValueError):
            StrictTransactionTimeEventRegular(Duration(0))

    @given(event_extensions(min_size=1, max_size=10))
    def test_strict_implies_non_strict(self, elements):
        # Two Figure 4 edges, verified on arbitrary extensions.
        unit = Duration(7)
        if StrictTransactionTimeEventRegular(unit).check_extension(elements):
            assert TransactionTimeEventRegular(unit).check_extension(elements)
        if StrictValidTimeEventRegular(unit).check_extension(elements):
            assert ValidTimeEventRegular(unit).check_extension(elements)

    @given(event_extensions(min_size=1, max_size=10))
    def test_temporal_implies_both_components(self, elements):
        unit = Duration(7)
        if TemporalEventRegular(unit).check_extension(elements):
            assert TransactionTimeEventRegular(unit).check_extension(elements)
            assert ValidTimeEventRegular(unit).check_extension(elements)

    @given(event_extensions(min_size=1, max_size=10))
    def test_temporal_regular_means_constant_offset(self, elements):
        """The same-k consequence: vt - tt is constant."""
        unit = Duration(7)
        if TemporalEventRegular(unit).check_extension(elements):
            offsets = {
                e.vt.microseconds - e.tt_start.microseconds for e in elements
            }
            assert len(offsets) == 1
