"""Unit tests for the specialization name registry and parser."""

import pytest

from repro.chronos.duration import CalendricDuration, Duration
from repro.core.taxonomy.event_isolated import (
    DelayedRetroactive,
    RetroactivelyBounded,
    StronglyBounded,
)
from repro.core.taxonomy.registry import REGISTRY, parse, parse_duration


class TestParseDuration:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("30s", Duration(30, "second")),
            ("5min", Duration(5, "minute")),
            ("12h", Duration(12, "hour")),
            ("1d", Duration(1, "day")),
            ("2w", Duration(2, "week")),
            ("250ms", Duration(250, "millisecond")),
            ("7us", Duration(7, "microsecond")),
            ("-3s", Duration(-3, "second")),
        ],
    )
    def test_fixed(self, text, expected):
        assert parse_duration(text) == expected

    def test_calendric(self):
        assert parse_duration("1mo") == CalendricDuration(months=1)
        assert parse_duration("2y") == CalendricDuration(years=2)

    def test_malformed(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_duration("soon")
        with pytest.raises(ValueError, match="unknown duration unit"):
            parse_duration("3fortnights")


class TestParse:
    def test_nullary(self):
        assert parse("retroactive").name == "retroactive"
        assert parse("degenerate").name == "degenerate"

    def test_unary_with_bound(self):
        spec = parse("delayed retroactive(30s)")
        assert isinstance(spec, DelayedRetroactive)
        assert spec.delay == Duration(30)

    def test_binary_with_bounds(self):
        spec = parse("strongly bounded(1d, 12h)")
        assert isinstance(spec, StronglyBounded)
        assert spec.past_bound == Duration(1, "day")
        assert spec.future_bound == Duration(12, "hour")

    def test_calendric_bound(self):
        spec = parse("retroactively bounded(1mo)")
        assert isinstance(spec, RetroactivelyBounded)
        assert spec.bound == CalendricDuration(months=1)

    def test_case_insensitive(self):
        assert parse("Retroactive").name == "retroactive"

    def test_regularity_requires_fixed_unit(self):
        with pytest.raises(ValueError, match="fixed duration"):
            parse("transaction time event regular(1mo)")

    def test_wrong_arity(self):
        with pytest.raises(ValueError, match="exactly one bound"):
            parse("delayed retroactive")
        with pytest.raises(ValueError, match="no bounds"):
            parse("retroactive(3s)")

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="unknown specialization"):
            parse("hyperbolic")

    def test_every_registry_entry_is_constructible(self):
        samples = {0: [], 1: ["10s"], 2: ["5s", "10s"]}
        for name in REGISTRY:
            built = None
            for arity in (0, 1, 2):
                arguments = ", ".join(samples[arity])
                text = f"{name}({arguments})" if arguments else name
                try:
                    built = parse(text)
                    break
                except ValueError:
                    continue
            assert built is not None, name
