"""E1: the Figure 1 region algebra and the Section 3.1 completeness proof."""

import pytest
from hypothesis import given, strategies as st

from repro.core.taxonomy import EVENT_ISOLATED_LATTICE
from repro.core.taxonomy.event_isolated import Degenerate
from repro.core.taxonomy.regions import (
    LINE_KIND_ABOVE,
    LINE_KIND_BELOW,
    LINE_KIND_ON,
    Bound,
    OffsetRegion,
    RegionShape,
    enumerate_regions,
    enumerate_shapes,
    shape_of,
)


class TestOffsetRegion:
    def test_unbounded_contains_everything(self):
        region = OffsetRegion(None, None)
        assert region.contains(-(10**12)) and region.contains(10**12)

    def test_closed_bounds_inclusive(self):
        region = OffsetRegion(Bound(-5), Bound(5))
        assert region.contains(-5) and region.contains(5)
        assert not region.contains(-6) and not region.contains(6)

    def test_open_bounds_exclusive(self):
        region = OffsetRegion(Bound(-5, closed=False), Bound(5, closed=False))
        assert not region.contains(-5) and not region.contains(5)
        assert region.contains(-4) and region.contains(4)

    def test_point_region(self):
        point = OffsetRegion(Bound(0), Bound(0))
        assert point.is_point
        assert point.contains(0) and not point.contains(1)

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            OffsetRegion(Bound(5), Bound(-5))
        with pytest.raises(ValueError):
            OffsetRegion(Bound(0, closed=False), Bound(0, closed=True))

    def test_line_counts(self):
        assert OffsetRegion(None, None).line_count == 0
        assert OffsetRegion(Bound(0), None).line_count == 1
        assert OffsetRegion(Bound(-1), Bound(1)).line_count == 2

    def test_line_kinds(self):
        assert OffsetRegion(Bound(-3), Bound(7)).line_kinds() == (
            LINE_KIND_ABOVE,
            LINE_KIND_BELOW,
        )
        assert OffsetRegion(None, Bound(0)).line_kinds() == (LINE_KIND_ON,)


class TestSubset:
    def test_bounded_inside_unbounded(self):
        assert OffsetRegion(Bound(-1), Bound(1)).is_subset(OffsetRegion(None, None))
        assert not OffsetRegion(None, None).is_subset(OffsetRegion(Bound(-1), Bound(1)))

    def test_open_inside_closed_at_same_offset(self):
        open_region = OffsetRegion(None, Bound(0, closed=False))
        closed_region = OffsetRegion(None, Bound(0, closed=True))
        assert open_region.is_subset(closed_region)
        assert not closed_region.is_subset(open_region)

    def test_reflexive(self):
        region = OffsetRegion(Bound(-2), Bound(9))
        assert region.is_subset(region)

    @given(
        st.integers(-100, 100), st.integers(0, 100),
        st.integers(-100, 100), st.integers(0, 100),
    )
    def test_subset_means_pointwise_containment(self, low1, width1, low2, width2):
        first = OffsetRegion(Bound(low1), Bound(low1 + width1))
        second = OffsetRegion(Bound(low2), Bound(low2 + width2))
        if first.is_subset(second):
            for offset in range(low1, low1 + width1 + 1):
                assert second.contains(offset)


class TestIntersection:
    def test_overlapping(self):
        left = OffsetRegion(Bound(-10), Bound(5))
        right = OffsetRegion(Bound(0), Bound(20))
        common = left.intersection(right)
        assert common == OffsetRegion(Bound(0), Bound(5))

    def test_disjoint_is_none(self):
        assert OffsetRegion(Bound(0), Bound(1)).intersection(
            OffsetRegion(Bound(5), Bound(6))
        ) is None

    def test_with_unbounded(self):
        half = OffsetRegion(None, Bound(0))
        assert half.intersection(OffsetRegion(None, None)) == half

    def test_degenerate_as_meet(self):
        """Degenerate = strongly retroactively ^ strongly predictively bounded."""
        retro = OffsetRegion(Bound(-30), Bound(0))
        predictive = OffsetRegion(Bound(0), Bound(30))
        assert retro.intersection(predictive) == Degenerate().region()


class TestCompletenessEnumeration:
    """The mechanical re-derivation of the Section 3.1 count."""

    def test_twelve_shapes(self):
        shapes = enumerate_shapes()
        assert len(shapes) == 12  # 11 specialized + general

    def test_line_count_breakdown(self):
        shapes = enumerate_shapes()
        by_count = {0: 0, 1: 0, 2: 0}
        for shape in shapes:
            by_count[shape.line_count] += 1
        # "With zero lines ... a general temporal event relation.  With
        # one line ... six distinct specialized temporal event relations.
        # With two lines, there are five possibilities."
        assert by_count == {0: 1, 1: 6, 2: 5}

    def test_enumeration_matches_named_table(self):
        named = enumerate_regions()
        assert len(named) == 12
        assert "general" in named
        assert named["strongly bounded"] == RegionShape(LINE_KIND_BELOW, LINE_KIND_ABOVE)

    def test_every_lattice_node_shape_is_enumerated(self):
        """Each Figure 2 node (except degenerate) realizes an enumerated shape."""
        named = enumerate_regions()
        for node in EVENT_ISOLATED_LATTICE.node_names:
            instance = EVENT_ISOLATED_LATTICE.instance(node)
            region = instance.region()
            if node == "degenerate":
                assert region.is_point
                continue
            assert shape_of(region) == named[node], node

    def test_shapes_have_unique_names(self):
        named = enumerate_regions()
        assert len(set(named.values())) == len(named)


class TestRegionLatticeAgreement:
    def test_figure2_edges_are_region_inclusions(self):
        """Every lattice edge child -> parent is a region subset."""
        lattice = EVENT_ISOLATED_LATTICE
        for parent, child in lattice.edges:
            parent_region = lattice.instance(parent).region()
            child_region = lattice.instance(child).region()
            assert child_region.is_subset(parent_region), (parent, child)

    def test_non_edges_are_not_inclusions_among_representatives(self):
        """Representatives of incomparable nodes have incomparable regions.

        This guards the lattice against missing edges: if the region of
        node A were contained in that of node B without B being an
        ancestor of A, Figure 2 would be incomplete.
        """
        lattice = EVENT_ISOLATED_LATTICE
        for a in lattice.node_names:
            for b in lattice.node_names:
                if a == b or lattice.is_ancestor(b, a):
                    continue
                region_a = lattice.instance(a).region()
                region_b = lattice.instance(b).region()
                assert not region_a.is_subset(region_b), (a, b)
