"""Unit and property tests for per-partition application (Sections 2-3)."""

from hypothesis import given, strategies as st

from repro.chronos.duration import Duration
from repro.chronos.timestamp import Timestamp
from repro.core.taxonomy.base import Stamped
from repro.core.taxonomy.event_inter import (
    GloballyNonDecreasing,
    GloballySequential,
    TransactionTimeEventRegular,
)
from repro.core.taxonomy.event_isolated import Retroactive
from repro.core.taxonomy.partition import (
    PerPartition,
    partition_extension,
    per_surrogate,
)


def element(tt: int, vt: int, who: str) -> Stamped:
    return Stamped(tt_start=Timestamp(tt), vt=Timestamp(vt), object_surrogate=who)


class TestPerPartition:
    def test_per_surrogate_sequential(self):
        """Interleaved life-lines: sequential per surrogate, not globally."""
        elements = [
            element(1, 1, "alice"),
            element(2, 2, "bob"),
            element(10, 5, "alice"),  # before bob's event in valid time
            element(11, 6, "bob"),
        ]
        assert not GloballySequential().check_extension(elements)
        assert PerPartition(GloballySequential()).check_extension(elements)

    def test_name_records_the_partitioning(self):
        spec = PerPartition(GloballySequential())
        assert spec.name == "per-surrogate globally sequential"

    def test_isolated_properties_unaffected_by_partitioning(self):
        """For per-element properties, per-partition == per-relation."""
        elements = [
            element(10, 5, "a"),
            element(20, 30, "b"),  # violates retroactive
        ]
        assert Retroactive().check_extension(elements) == PerPartition(
            Retroactive()
        ).check_extension(elements)

    def test_custom_key(self):
        elements = [
            Stamped(tt_start=Timestamp(1), vt=Timestamp(9), attributes={"dept": "x"}),
            Stamped(tt_start=Timestamp(2), vt=Timestamp(1), attributes={"dept": "y"}),
        ]
        spec = PerPartition(
            GloballyNonDecreasing(), key=lambda e: e.attributes["dept"], label="dept"
        )
        assert spec.check_extension(elements)
        assert spec.name == "per-dept globally non-decreasing"

    def test_violations_carry_through(self):
        elements = [element(1, 5, "a"), element(2, 4, "a")]
        violations = PerPartition(GloballyNonDecreasing()).violations(elements)
        assert len(violations) == 1


class TestPartitionExtension:
    def test_groups_by_surrogate(self):
        elements = [element(1, 1, "a"), element(2, 2, "b"), element(3, 3, "a")]
        groups = partition_extension(elements)
        assert set(groups) == {"a", "b"}
        assert len(groups["a"]) == 2

    def test_per_surrogate_key(self):
        assert per_surrogate(element(1, 1, "x")) == "x"


class TestGlobalVsPartitionRelationships:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 1000),
                st.integers(-50, 50),
                st.sampled_from(["a", "b", "c"]),
            ),
            min_size=1,
            max_size=12,
            unique_by=lambda t: t[0],
        )
    )
    def test_global_implies_per_partition_for_orderings(self, rows):
        """A global ordering restricts every pair, hence every partition."""
        elements = [element(tt, tt + off, who) for tt, off, who in rows]
        if GloballyNonDecreasing().check_extension(elements):
            assert PerPartition(GloballyNonDecreasing()).check_extension(elements)
        if GloballySequential().check_extension(elements):
            assert PerPartition(GloballySequential()).check_extension(elements)

    def test_per_partition_regularity_does_not_imply_global(self):
        """Reproduction note (E3): Section 3.2 claims the per-partition
        variant of non-strict regularity implies the global variant; for
        a shared unit this fails when partitions are out of phase."""
        unit = Duration(10)
        elements = [
            element(0, 0, "a"),
            element(10, 0, "a"),  # partition a: tts 0, 10 -- regular
            element(15, 0, "b"),  # partition b: tt 15 alone -- regular
        ]
        per_partition = PerPartition(TransactionTimeEventRegular(unit))
        assert per_partition.check_extension(elements)
        assert not TransactionTimeEventRegular(unit).check_extension(elements)
