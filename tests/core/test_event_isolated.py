"""Unit and property tests for the Section 3.1 isolated-event taxonomy."""

import pytest
from hypothesis import given

from repro.chronos.duration import CalendricDuration, Duration
from repro.chronos.timestamp import Timestamp
from repro.core.taxonomy.base import Stamped, TimeReference
from repro.core.taxonomy.event_isolated import (
    Degenerate,
    DelayedRetroactive,
    DelayedStronglyRetroactivelyBounded,
    EarlyPredictive,
    EarlyStronglyPredictivelyBounded,
    General,
    Predictive,
    PredictivelyBounded,
    Retroactive,
    RetroactivelyBounded,
    StronglyBounded,
    StronglyPredictivelyBounded,
    StronglyRetroactivelyBounded,
)

from tests.conftest import event_elements


def element(tt: int, vt: int, tt_stop=None) -> Stamped:
    if tt_stop is None:
        return Stamped(tt_start=Timestamp(tt), vt=Timestamp(vt))
    return Stamped(tt_start=Timestamp(tt), vt=Timestamp(vt), tt_stop=Timestamp(tt_stop))


class TestRetroactiveFamily:
    def test_retroactive(self):
        spec = Retroactive()
        assert spec.check_element(element(10, 5))
        assert spec.check_element(element(10, 10))  # <=-version includes equality
        assert not spec.check_element(element(10, 11))

    def test_strict_retroactive_excludes_equality(self):
        spec = Retroactive(strict=True)
        assert spec.check_element(element(10, 9))
        assert not spec.check_element(element(10, 10))

    def test_delayed_retroactive(self):
        # The paper's 30-second sampling delay example.
        spec = DelayedRetroactive(Duration(30))
        assert spec.check_element(element(100, 70))
        assert spec.check_element(element(100, 50))
        assert not spec.check_element(element(100, 71))

    def test_delayed_requires_positive_delay(self):
        with pytest.raises(ValueError):
            DelayedRetroactive(Duration(0))

    def test_retroactively_bounded_allows_future(self):
        # The paper's project-assignment example: future assignments are
        # fine, but recording may lag by at most the bound.
        spec = RetroactivelyBounded(Duration(10))
        assert spec.check_element(element(100, 95))
        assert spec.check_element(element(100, 90))
        assert spec.check_element(element(100, 10**6))
        assert not spec.check_element(element(100, 89))

    def test_strongly_retroactively_bounded(self):
        spec = StronglyRetroactivelyBounded(Duration(10))
        assert spec.check_element(element(100, 100))
        assert spec.check_element(element(100, 90))
        assert not spec.check_element(element(100, 101))
        assert not spec.check_element(element(100, 89))

    def test_delayed_strongly_retroactively_bounded(self):
        spec = DelayedStronglyRetroactivelyBounded(
            min_delay=Duration(2), max_delay=Duration(30)
        )
        assert spec.check_element(element(100, 98))
        assert spec.check_element(element(100, 70))
        assert not spec.check_element(element(100, 99))
        assert not spec.check_element(element(100, 69))

    def test_delayed_strongly_bound_ordering_validated(self):
        with pytest.raises(ValueError):
            DelayedStronglyRetroactivelyBounded(
                min_delay=Duration(30), max_delay=Duration(2)
            )


class TestPredictiveFamily:
    def test_predictive(self):
        spec = Predictive()
        assert spec.check_element(element(10, 15))
        assert spec.check_element(element(10, 10))
        assert not spec.check_element(element(10, 9))

    def test_early_predictive(self):
        # The payroll tape: at least three days before the deposit.
        spec = EarlyPredictive(Duration(3, "day"))
        day = 86_400
        assert spec.check_element(element(0, 3 * day))
        assert spec.check_element(element(0, 5 * day))
        assert not spec.check_element(element(0, 3 * day - 1))

    def test_predictively_bounded_allows_past(self):
        # The order database: pending orders at most 30 days ahead.
        spec = PredictivelyBounded(Duration(30))
        assert spec.check_element(element(100, 130))
        assert spec.check_element(element(100, -(10**6)))
        assert not spec.check_element(element(100, 131))

    def test_strongly_predictively_bounded(self):
        spec = StronglyPredictivelyBounded(Duration(30))
        assert spec.check_element(element(100, 100))
        assert spec.check_element(element(100, 130))
        assert not spec.check_element(element(100, 99))
        assert not spec.check_element(element(100, 131))

    def test_early_strongly_predictively_bounded(self):
        # Tape sent at most one week early, needed at least 3 days early.
        spec = EarlyStronglyPredictivelyBounded(
            min_lead=Duration(3, "day"), max_lead=Duration(7, "day")
        )
        day = 86_400
        assert spec.check_element(element(0, 3 * day))
        assert spec.check_element(element(0, 7 * day))
        assert not spec.check_element(element(0, 2 * day))
        assert not spec.check_element(element(0, 8 * day))


class TestStronglyBoundedAndDegenerate:
    def test_strongly_bounded(self):
        spec = StronglyBounded(Duration(5), Duration(10))
        assert spec.check_element(element(100, 95))
        assert spec.check_element(element(100, 110))
        assert not spec.check_element(element(100, 94))
        assert not spec.check_element(element(100, 111))

    def test_degenerate_exact(self):
        spec = Degenerate()
        assert spec.check_element(element(10, 10))
        assert not spec.check_element(element(10, 11))

    def test_degenerate_within_granularity(self):
        # "within the selected granularity" (Section 3.1)
        spec = Degenerate(granularity="minute")
        assert spec.check_element(element(61, 100))  # same minute
        assert not spec.check_element(element(59, 60))  # different minutes

    def test_general_accepts_anything(self):
        spec = General()
        assert spec.check_element(element(0, 10**9))
        assert spec.check_element(element(10**9, 0))


class TestCalendricBounds:
    def test_one_month_bound_is_anchor_dependent(self):
        # "recorded no later than one month after it is effective"
        spec = RetroactivelyBounded(CalendricDuration(months=1))
        stored_mar31 = Timestamp.from_date(2026, 3, 31, granularity="second")
        effective_mar1 = Timestamp.from_date(2026, 3, 1, granularity="second")
        effective_feb28 = Timestamp.from_date(2026, 2, 28, granularity="second")
        assert spec.check_stamps(effective_mar1, stored_mar31)
        # 31 Mar minus one month = 28 Feb (clamped), so 28 Feb is allowed...
        assert spec.check_stamps(effective_feb28, stored_mar31)
        # ...but one day earlier is not.
        effective_feb27 = Timestamp.from_date(2026, 2, 27, granularity="second")
        assert not spec.check_stamps(effective_feb27, stored_mar31)

    def test_calendric_bound_has_no_fixed_region(self):
        with pytest.raises(TypeError):
            RetroactivelyBounded(CalendricDuration(months=1)).region()


class TestTimeReference:
    def test_deletion_retroactive(self):
        # Property relative to the deletion time tt_d (Section 3.1).
        spec = Retroactive(time_reference=TimeReference.DELETION)
        assert spec.check_element(element(0, 5, tt_stop=10))
        assert not spec.check_element(element(0, 15, tt_stop=10))

    def test_deletion_reference_vacuous_for_current_elements(self):
        spec = Retroactive(time_reference=TimeReference.DELETION)
        assert spec.check_element(element(0, 10**9))  # never deleted

    def test_insertion_vs_deletion_can_differ(self):
        # Deletion retroactive but not insertion retroactive.
        elem = element(0, 5, tt_stop=10)
        assert not Retroactive(time_reference=TimeReference.INSERTION).check_element(elem)
        assert Retroactive(time_reference=TimeReference.DELETION).check_element(elem)


class TestRegionPredicateAgreement:
    """The defining predicate and the Figure 1 region always agree."""

    SPECS = [
        General(),
        Retroactive(),
        Retroactive(strict=True),
        DelayedRetroactive(Duration(7)),
        Predictive(),
        EarlyPredictive(Duration(7)),
        RetroactivelyBounded(Duration(12)),
        StronglyRetroactivelyBounded(Duration(12)),
        DelayedStronglyRetroactivelyBounded(Duration(3), Duration(12)),
        PredictivelyBounded(Duration(12)),
        StronglyPredictivelyBounded(Duration(12)),
        EarlyStronglyPredictivelyBounded(Duration(3), Duration(12)),
        StronglyBounded(Duration(5), Duration(9)),
        Degenerate(),
    ]

    @given(event_elements(max_offset=40))
    def test_agreement(self, elem):
        offset = elem.vt.microseconds - elem.tt_start.microseconds
        for spec in self.SPECS:
            assert spec.check_element(elem) == spec.region().contains(offset), spec.name

    def test_violation_message_names_the_type(self):
        spec = DelayedRetroactive(Duration(30))
        violations = spec.violations([element(100, 90)])
        assert len(violations) == 1
        assert "delayed retroactive" in str(violations[0])

    def test_check_extension_all_elements(self):
        spec = Retroactive()
        good = [element(10, 5), element(20, 20)]
        assert spec.check_extension(good)
        assert not spec.check_extension(good + [element(30, 31)])


class TestEventKindSafety:
    def test_event_spec_rejects_interval_elements(self):
        from repro.chronos.interval import Interval

        bad = Stamped(
            tt_start=Timestamp(0), vt=Interval(Timestamp(0), Timestamp(5))
        )
        with pytest.raises(TypeError, match="interval-stamped"):
            Retroactive().check_element(bad)
