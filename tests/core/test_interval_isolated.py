"""Unit tests for the Section 3.3 isolated-interval taxonomy."""

import pytest

from repro.chronos.duration import Duration
from repro.chronos.interval import Interval
from repro.chronos.timestamp import FOREVER, Timestamp
from repro.core.taxonomy.base import Stamped
from repro.core.taxonomy.event_isolated import Degenerate, Predictive, Retroactive
from repro.core.taxonomy.interval_isolated import (
    Endpoint,
    OnBothEndpoints,
    OnEndpoint,
    TemporalIntervalRegular,
    TransactionTimeIntervalRegular,
    ValidTimeIntervalRegular,
)


def element(tt: int, start: int, end: int, tt_stop=None) -> Stamped:
    return Stamped(
        tt_start=Timestamp(tt),
        vt=Interval(Timestamp(start), Timestamp(end)),
        tt_stop=FOREVER if tt_stop is None else Timestamp(tt_stop),
    )


class TestEndpointLifting:
    def test_stored_as_soon_as_it_terminates(self):
        """The paper's example: vt-start-retroactive and vt-end-degenerate."""
        start_retro = OnEndpoint(Retroactive(), Endpoint.START)
        end_degenerate = OnEndpoint(Degenerate(), Endpoint.END)
        elem = element(tt=50, start=10, end=50)
        assert start_retro.check_element(elem)
        assert end_degenerate.check_element(elem)

    def test_endpoint_selection_matters(self):
        elem = element(tt=30, start=10, end=50)
        assert OnEndpoint(Retroactive(), Endpoint.START).check_element(elem)
        assert not OnEndpoint(Retroactive(), Endpoint.END).check_element(elem)
        assert OnEndpoint(Predictive(), Endpoint.END).check_element(elem)

    def test_both_endpoints_shorthand(self):
        """vt-start-retroactive + vt-end-retroactive = 'retroactive'."""
        spec = OnBothEndpoints(Retroactive())
        assert spec.check_element(element(tt=100, start=10, end=50))
        assert not spec.check_element(element(tt=30, start=10, end=50))
        assert spec.name == "interval retroactive"

    def test_unbounded_endpoint_fails_bounded_predicates(self):
        current = Stamped(
            tt_start=Timestamp(10), vt=Interval(Timestamp(0), FOREVER)
        )
        assert not OnEndpoint(Retroactive(), Endpoint.END).check_element(current)

    def test_event_element_rejected(self):
        with pytest.raises(TypeError, match="interval specialization"):
            OnEndpoint(Retroactive(), Endpoint.START).check_element(
                Stamped(tt_start=Timestamp(0), vt=Timestamp(0))
            )


class TestIntervalRegularity:
    def test_valid_time_interval_regular(self):
        spec = ValidTimeIntervalRegular(Duration(7, "day"))
        week = 7 * 86_400
        assert spec.check_element(element(0, 0, week))
        assert spec.check_element(element(0, 0, 3 * week))
        assert not spec.check_element(element(0, 0, week + 1))

    def test_strict_valid_time_interval_regular(self):
        spec = ValidTimeIntervalRegular(Duration(7, "day"), strict=True)
        week = 7 * 86_400
        assert spec.check_element(element(0, 0, week))
        assert not spec.check_element(element(0, 0, 2 * week))
        assert spec.name.startswith("strict ")

    def test_transaction_time_interval_regular(self):
        spec = TransactionTimeIntervalRegular(Duration(10))
        assert spec.check_element(element(0, 0, 5, tt_stop=20))
        assert not spec.check_element(element(0, 0, 5, tt_stop=25))

    def test_current_elements_vacuously_regular(self):
        spec = TransactionTimeIntervalRegular(Duration(10))
        assert spec.check_element(element(0, 0, 5))  # tt_stop = FOREVER

    def test_temporal_interval_regular_shares_the_unit(self):
        spec = TemporalIntervalRegular(Duration(10))
        assert spec.check_element(element(0, 0, 20, tt_stop=30))
        assert not spec.check_element(element(0, 0, 15, tt_stop=30))
        assert not spec.check_element(element(0, 0, 20, tt_stop=35))

    def test_strict_temporal_interval_regular(self):
        spec = TemporalIntervalRegular(Duration(10), strict=True)
        assert spec.check_element(element(0, 0, 10, tt_stop=10))
        assert not spec.check_element(element(0, 0, 20, tt_stop=10))

    def test_unit_must_be_positive(self):
        with pytest.raises(ValueError):
            ValidTimeIntervalRegular(Duration(0))

    def test_unit_must_be_fixed(self):
        from repro.chronos.duration import CalendricDuration

        with pytest.raises(TypeError):
            ValidTimeIntervalRegular(CalendricDuration(months=1))

    def test_unbounded_valid_interval_vacuous(self):
        spec = ValidTimeIntervalRegular(Duration(10))
        current = Stamped(tt_start=Timestamp(0), vt=Interval(Timestamp(0), FOREVER))
        assert spec.check_element(current)
