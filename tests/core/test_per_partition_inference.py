"""Tests for per-partition (per-surrogate) specialization inference."""

from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.core.taxonomy.base import Stamped
from repro.core.taxonomy.inference import classify, fit_per_partition


def element(tt: int, vt: int, who: str) -> Stamped:
    return Stamped(tt_start=Timestamp(tt), vt=Timestamp(vt), object_surrogate=who)


def interval_element(tt: int, start: int, end: int, who: str) -> Stamped:
    return Stamped(
        tt_start=Timestamp(tt),
        vt=Interval(Timestamp(start), Timestamp(end)),
        object_surrogate=who,
    )


class TestEventPerPartition:
    def test_interleaved_lifelines_found_sequential(self):
        # Two sensors interleave in tt; each is sequential on its own,
        # but globally the valid times zig-zag.
        elements = [
            element(10, 9, "a"),
            element(11, 8, "b"),
            element(20, 19, "a"),
            element(21, 18, "b"),
        ]
        found = fit_per_partition(elements)
        names = [spec.name for spec in found]
        assert "per-surrogate globally sequential" in names

    def test_sequential_suppresses_redundant_non_decreasing(self):
        elements = [
            element(10, 9, "a"),
            element(11, 8, "b"),
            element(20, 19, "a"),
            element(21, 18, "b"),
        ]
        names = [spec.name for spec in fit_per_partition(elements)]
        assert "per-surrogate globally non-decreasing" not in names

    def test_globally_satisfied_properties_not_repeated(self):
        # One object only: global and per-partition coincide; report none.
        elements = [element(10, 9, "a"), element(20, 19, "a")]
        assert fit_per_partition(elements) == []

    def test_per_partition_non_increasing(self):
        elements = [
            element(10, -100, "a"),
            element(11, -50, "b"),
            element(20, -200, "a"),
            element(21, -300, "b"),
        ]
        names = [spec.name for spec in fit_per_partition(elements)]
        assert "per-surrogate globally non-increasing" in names

    def test_no_structure_reports_nothing(self):
        elements = [
            element(10, 100, "a"),
            element(20, 5, "a"),
            element(30, 50, "a"),
        ]
        assert fit_per_partition(elements) == []

    def test_classify_includes_per_partition(self):
        elements = [
            element(10, 9, "a"),
            element(11, 8, "b"),
            element(20, 19, "a"),
            element(21, 18, "b"),
        ]
        report = classify(elements)
        assert any("per-surrogate" in s.name for s in report.specializations())

    def test_everything_reported_actually_holds(self):
        elements = [
            element(10, 9, "a"),
            element(11, 8, "b"),
            element(20, 19, "a"),
            element(21, 18, "b"),
        ]
        for spec in fit_per_partition(elements):
            assert spec.check_extension(elements)


class TestIntervalPerPartition:
    def test_interleaved_weekly_intervals(self):
        elements = [
            interval_element(8, 10, 15, "a"),
            interval_element(9, 10, 15, "b"),
            interval_element(18, 20, 25, "a"),
            interval_element(19, 20, 25, "b"),
        ]
        names = [spec.name for spec in fit_per_partition(elements)]
        assert "per-surrogate globally sequential (intervals)" in names

    def test_assignments_workload(self):
        from repro.workloads import generate_assignments

        workload = generate_assignments(employees=3, weeks=10, record_on="weekend")
        report = classify(workload.relation.all_elements())
        names = [spec.name for spec in report.per_partition]
        assert "per-surrogate globally sequential (intervals)" in names

    def test_advisor_reports_per_partition_payoff(self):
        from repro.design.advisor import Advisor
        from repro.workloads import generate_assignments

        workload = generate_assignments(employees=3, weeks=10, record_on="weekend")
        recommendation = Advisor().recommend_for_relation(workload.relation)
        assert any("per-surrogate" in name for name in recommendation.declared_names)
        assert any("life-line" in payoff for payoff in recommendation.payoffs)
