"""Unit and property tests for the Section 3.4 inter-interval taxonomy."""

from hypothesis import given

from repro.chronos.allen import AllenRelation, allen_relation
from repro.chronos.interval import Interval
from repro.chronos.timestamp import Timestamp
from repro.core.taxonomy.base import Stamped
from repro.core.taxonomy.interval_inter import (
    GloballyContiguous,
    IntervalGloballyNonDecreasing,
    IntervalGloballyNonIncreasing,
    IntervalGloballySequential,
    SuccessiveTransactionTime,
    successive_family,
)

from tests.conftest import interval_extensions


def element(tt: int, start: int, end: int) -> Stamped:
    return Stamped(tt_start=Timestamp(tt), vt=Interval(Timestamp(start), Timestamp(end)))


class TestOrderings:
    def test_sequential_weekend_assignments(self):
        """The paper's weekly-assignment example: the next week's interval
        is recorded during the weekend, after the previous week ends."""
        elements = [
            element(tt=7, start=0, end=7),
            element(tt=14, start=7, end=14),
            element(tt=21, start=14, end=21),
        ]
        assert IntervalGloballySequential().check_extension(elements)

    def test_thursday_recording_is_non_decreasing_not_sequential(self):
        """Recording next week's assignment on Thursday: tt falls inside
        the current week's interval, so sequentiality fails but the
        relation stays non-decreasing."""
        elements = [
            element(tt=0, start=0, end=7),
            element(tt=4, start=7, end=14),   # Thursday of week one
            element(tt=11, start=14, end=21),  # Thursday of week two
        ]
        assert not IntervalGloballySequential().check_extension(elements)
        assert IntervalGloballyNonDecreasing().check_extension(elements)

    def test_non_increasing(self):
        elements = [element(1, 20, 30), element(2, 10, 25), element(3, 0, 40)]
        assert IntervalGloballyNonIncreasing().check_extension(elements)
        assert not IntervalGloballyNonIncreasing().check_extension(
            [element(1, 0, 5), element(2, 3, 9)]
        )

    @given(interval_extensions(min_size=1, max_size=8))
    def test_pairwise_definition_equivalence(self, elements):
        ordered = sorted(elements, key=lambda e: e.tt_start.microseconds)

        def naive_sequential():
            for i, first in enumerate(ordered):
                for second in ordered[i + 1 :]:
                    if not max(first.tt_start, first.vt.end) <= min(
                        second.tt_start, second.vt.start
                    ):
                        return False
            return True

        def naive_monotone(op):
            for i, first in enumerate(ordered):
                for second in ordered[i + 1 :]:
                    if not op(first.vt.start, second.vt.start):
                        return False
            return True

        assert IntervalGloballySequential().check_extension(elements) == naive_sequential()
        assert IntervalGloballyNonDecreasing().check_extension(elements) == naive_monotone(
            lambda a, b: a <= b
        )
        assert IntervalGloballyNonIncreasing().check_extension(elements) == naive_monotone(
            lambda a, b: a >= b
        )

    @given(interval_extensions(min_size=2, max_size=8))
    def test_sequential_implies_non_decreasing(self, elements):
        if IntervalGloballySequential().check_extension(elements):
            assert IntervalGloballyNonDecreasing().check_extension(elements)


class TestContiguity:
    def test_contiguous_chain(self):
        elements = [element(1, 0, 5), element(2, 5, 9), element(3, 9, 20)]
        assert GloballyContiguous().check_extension(elements)

    def test_gap_breaks_contiguity(self):
        elements = [element(1, 0, 5), element(2, 6, 9)]
        assert not GloballyContiguous().check_extension(elements)

    def test_contiguous_is_successive_meets(self):
        assert GloballyContiguous().relation is AllenRelation.MEETS

    def test_single_element_is_contiguous(self):
        assert GloballyContiguous().check_extension([element(1, 0, 5)])


class TestSuccessiveFamily:
    def test_thirteen_members(self):
        family = successive_family()
        assert len(family) == 13
        names = {spec.name for spec in family}
        assert "st-before" in names and "sti-before" in names
        assert "st-equal" in names

    def test_st_overlaps_next_begins_before_previous_completes(self):
        spec = SuccessiveTransactionTime(AllenRelation.OVERLAPS)
        good = [element(1, 0, 10), element(2, 5, 15), element(3, 12, 30)]
        assert spec.check_extension(good)
        bad = [element(1, 0, 10), element(2, 10, 15)]  # meets, not overlaps
        assert not spec.check_extension(bad)

    def test_st_equal(self):
        spec = SuccessiveTransactionTime(AllenRelation.EQUAL)
        assert spec.check_extension([element(1, 0, 5), element(2, 0, 5)])
        assert not spec.check_extension([element(1, 0, 5), element(2, 0, 6)])

    def test_sti_before(self):
        spec = SuccessiveTransactionTime(AllenRelation.BEFORE_INVERSE)
        assert spec.check_extension([element(1, 10, 15), element(2, 0, 5)])

    @given(interval_extensions(min_size=2, max_size=8))
    def test_exactly_one_family_member_fits_uniform_chains(self, elements):
        """When all successive pairs share an Allen relation, exactly one
        family member accepts the extension; otherwise none does."""
        ordered = sorted(elements, key=lambda e: e.tt_start.microseconds)
        relations = {
            allen_relation(a.vt, b.vt) for a, b in zip(ordered, ordered[1:])
        }
        accepted = [
            spec.relation for spec in successive_family() if spec.check_extension(elements)
        ]
        if len(relations) == 1:
            assert accepted == [relations.pop()]
        else:
            assert accepted == []

    def test_violation_reports_actual_relation(self):
        spec = SuccessiveTransactionTime(AllenRelation.MEETS)
        violations = spec.violations([element(1, 0, 5), element(2, 7, 9)])
        assert len(violations) == 1
        assert "before" in violations[0].message
