"""E2/E3/E5: the four figure lattices, structurally and semantically.

Structural: node and edge sets match the paper's figures (Figure 5 per
the documented reconstruction).  Semantic: every edge is an implication
-- any random extension satisfying the child's representative instance
satisfies the parent's.
"""

import pytest
from hypothesis import given, settings

from repro.core.taxonomy.lattice import (
    ALL_LATTICES,
    EVENT_ISOLATED_LATTICE,
    INTER_EVENT_ORDERING_LATTICE,
    INTER_EVENT_REGULARITY_LATTICE,
    INTER_INTERVAL_LATTICE,
    Lattice,
    Node,
)

from tests.conftest import event_extensions, interval_extensions


class TestStructureFigure2:
    def test_thirteen_nodes(self):
        assert len(EVENT_ISOLATED_LATTICE.node_names) == 13

    def test_root_and_leaves(self):
        lattice = EVENT_ISOLATED_LATTICE
        assert lattice.roots() == ["general"]
        assert set(lattice.leaves()) == {
            "early strongly predictively bounded",
            "degenerate",
            "delayed strongly retroactively bounded",
        }

    def test_exact_edge_set(self):
        expected = {
            ("general", "retroactively bounded"),
            ("general", "predictively bounded"),
            ("retroactively bounded", "predictive"),
            ("retroactively bounded", "strongly bounded"),
            ("predictively bounded", "retroactive"),
            ("predictively bounded", "strongly bounded"),
            ("predictive", "early predictive"),
            ("predictive", "strongly predictively bounded"),
            ("strongly bounded", "strongly predictively bounded"),
            ("strongly bounded", "strongly retroactively bounded"),
            ("retroactive", "strongly retroactively bounded"),
            ("retroactive", "delayed retroactive"),
            ("strongly predictively bounded", "early strongly predictively bounded"),
            ("strongly predictively bounded", "degenerate"),
            ("strongly retroactively bounded", "degenerate"),
            ("strongly retroactively bounded", "delayed strongly retroactively bounded"),
            ("early predictive", "early strongly predictively bounded"),
            ("delayed retroactive", "delayed strongly retroactively bounded"),
        }
        assert set(EVENT_ISOLATED_LATTICE.edges) == expected

    def test_degenerate_inherits_both_strong_branches(self):
        ancestors = EVENT_ISOLATED_LATTICE.ancestors("degenerate")
        assert "strongly retroactively bounded" in ancestors
        assert "strongly predictively bounded" in ancestors
        assert "retroactive" in ancestors and "predictive" in ancestors
        assert "general" in ancestors


class TestStructureFigures345:
    def test_figure3(self):
        lattice = INTER_EVENT_ORDERING_LATTICE
        assert set(lattice.node_names) == {
            "general",
            "globally non-decreasing",
            "globally non-increasing",
            "globally sequential",
        }
        assert set(lattice.edges) == {
            ("general", "globally non-decreasing"),
            ("general", "globally non-increasing"),
            ("globally non-decreasing", "globally sequential"),
        }

    def test_figure4(self):
        lattice = INTER_EVENT_REGULARITY_LATTICE
        assert len(lattice.node_names) == 7
        assert lattice.parents("strict temporal event regular") == [
            "temporal event regular",
            "strict transaction time event regular",
            "strict valid time event regular",
        ]

    def test_figure5_nodes(self):
        lattice = INTER_INTERVAL_LATTICE
        # 13 successive-tt properties (one aliased as contiguous), the
        # two orderings, sequentiality, and general.
        assert len(lattice.node_names) == 17
        st_nodes = [n for n in lattice.node_names if n.startswith(("st-", "sti-"))]
        assert len(st_nodes) == 12  # st-meets appears as globally contiguous
        assert "globally contiguous (st-meets)" in lattice.node_names


class TestLatticeAlgebra:
    def test_most_specific(self):
        lattice = EVENT_ISOLATED_LATTICE
        assert lattice.most_specific(["general", "retroactive", "degenerate"]) == {
            "degenerate"
        }
        assert lattice.most_specific(["delayed retroactive", "early predictive"]) == {
            "delayed retroactive",
            "early predictive",
        }

    def test_closure(self):
        lattice = INTER_EVENT_ORDERING_LATTICE
        assert lattice.closure(["globally sequential"]) == {
            "globally sequential",
            "globally non-decreasing",
            "general",
        }

    def test_topological_order_parents_first(self):
        for lattice in ALL_LATTICES:
            order = lattice.topological_order()
            positions = {name: i for i, name in enumerate(order)}
            for parent, child in lattice.edges:
                assert positions[parent] < positions[child]

    def test_is_ancestor(self):
        assert EVENT_ISOLATED_LATTICE.is_ancestor("general", "degenerate")
        assert not EVENT_ISOLATED_LATTICE.is_ancestor("degenerate", "general")
        assert not EVENT_ISOLATED_LATTICE.is_ancestor(
            "delayed retroactive", "early predictive"
        )

    def test_to_dot_mentions_every_edge(self):
        dot = EVENT_ISOLATED_LATTICE.to_dot()
        assert '"general" -> "retroactively bounded";' in dot
        assert dot.startswith("digraph")

    def test_cycle_detection(self):
        with pytest.raises(ValueError, match="cycle"):
            Lattice(
                "bad",
                nodes=[Node("a", lambda: None), Node("b", lambda: None)],
                edges=[("a", "b"), ("b", "a")],
            )

    def test_unknown_edge_endpoint(self):
        with pytest.raises(ValueError, match="unknown"):
            Lattice("bad", nodes=[Node("a", lambda: None)], edges=[("a", "zzz")])

    def test_instances_are_fresh(self):
        lattice = INTER_EVENT_ORDERING_LATTICE
        assert lattice.instance("globally sequential") is not lattice.instance(
            "globally sequential"
        )


class TestSemanticEdgesFigure2:
    """Every Figure 2 edge, verified as an implication on random extensions."""

    @settings(max_examples=60)
    @given(event_extensions(min_size=1, max_size=10, max_offset=60))
    def test_child_implies_parent(self, elements):
        lattice = EVENT_ISOLATED_LATTICE
        for parent, child in lattice.edges:
            child_spec = lattice.instance(child)
            if child_spec.check_extension(elements):
                assert lattice.instance(parent).check_extension(elements), (parent, child)


class TestSemanticEdgesFigures34:
    @settings(max_examples=60)
    @given(event_extensions(min_size=1, max_size=10, max_offset=60))
    def test_child_implies_parent(self, elements):
        for lattice in (INTER_EVENT_ORDERING_LATTICE, INTER_EVENT_REGULARITY_LATTICE):
            for parent, child in lattice.edges:
                child_spec = lattice.instance(child)
                if child_spec.check_extension(elements):
                    assert lattice.instance(parent).check_extension(elements), (
                        lattice.name,
                        parent,
                        child,
                    )


class TestSemanticEdgesFigure5:
    @settings(max_examples=60)
    @given(interval_extensions(min_size=1, max_size=8))
    def test_child_implies_parent(self, elements):
        lattice = INTER_INTERVAL_LATTICE
        for parent, child in lattice.edges:
            child_spec = lattice.instance(child)
            if child_spec.check_extension(elements):
                assert lattice.instance(parent).check_extension(elements), (parent, child)
