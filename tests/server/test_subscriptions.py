"""Standing views over HTTP: registration, long-poll delta streams, and
the restart contract.

Satellite 3's claim lives here: a server restarted over a recovered WAL
must never replay deltas it already delivered.  The registry's journal
floor opens at the recovered pin, so a subscriber resuming from its
pre-crash cursor either resumes cleanly (nothing new) or is told to
resync against a fresh snapshot -- but is never handed a duplicate.
"""

from __future__ import annotations

import asyncio

from repro.server import ServerConfig
from tests.server.harness import connected_client, running_server

MICRO = 1_000_000

RELATION_SPEC = {
    "name": "r",
    "time_varying": ["v"],
    "engine": "logfile",
}


def _config(tmp_path) -> ServerConfig:
    return ServerConfig(port=0, data_dir=str(tmp_path), close_engines=True)


def _epochs(body) -> list:
    return [delta["epoch"] for delta in body["deltas"]]


class TestViewEndpoints:
    def test_register_read_and_list_views(self, tmp_path) -> None:
        async def scenario() -> None:
            async with running_server(_config(tmp_path)) as server:
                async with connected_client(server) as client:
                    assert (await client.create_relation(RELATION_SPEC)).status == 200
                    assert (
                        await client.register_view(
                            "r", {"name": "live", "kind": "current"}
                        )
                    ).status == 200
                    assert (
                        await client.register_view(
                            "r",
                            {"name": "slice", "kind": "timeslice", "vt": MICRO},
                        )
                    ).status == 200
                    assert (
                        await client.register_view(
                            "r",
                            {
                                "name": "window",
                                "kind": "overlap",
                                "start": 0,
                                "end": 3 * MICRO,
                            },
                        )
                    ).status == 200

                    await client.bulk(
                        "r",
                        [["a", 0, {"v": 1}], ["b", MICRO, {"v": 2}], ["c", 5 * MICRO, {"v": 3}]],
                    )

                    listing = (await client.views("r")).json()
                    # REPRO_VIEWS=1 auto-registers an extra "current"
                    # view on every relation, so assert containment.
                    assert {"live", "slice", "window"} <= {
                        v["name"] for v in listing["views"]
                    }

                    live = (await client.view("r", "live")).json()
                    assert live["count"] == 3
                    sliced = (await client.view("r", "slice")).json()
                    assert [row["object"] for row in sliced["rows"]] == ["b"]
                    window = (await client.view("r", "window")).json()
                    assert [row["object"] for row in window["rows"]] == ["a", "b"]

        asyncio.run(scenario())

    def test_invalid_registrations_answer_400(self, tmp_path) -> None:
        async def scenario() -> None:
            async with running_server(_config(tmp_path)) as server:
                async with connected_client(server) as client:
                    assert (await client.create_relation(RELATION_SPEC)).status == 200
                    bad_kind = await client.register_view(
                        "r", {"name": "x", "kind": "sampled"}
                    )
                    assert bad_kind.status == 400
                    bad_window = await client.register_view(
                        "r",
                        {"name": "w", "kind": "overlap", "start": 5, "end": 5},
                    )
                    assert bad_window.status == 400
                    assert (
                        await client.register_view(
                            "r", {"name": "live", "kind": "current"}
                        )
                    ).status == 200
                    duplicate = await client.register_view(
                        "r", {"name": "live", "kind": "current"}
                    )
                    assert duplicate.status == 400

        asyncio.run(scenario())


class TestLongPoll:
    def test_snapshot_pin_plus_deltas_reconstructs_state(self, tmp_path) -> None:
        """The epoch-reconciliation recipe: snapshot at pin E, then
        apply exactly the deltas with epoch > E."""

        async def scenario() -> None:
            async with running_server(_config(tmp_path)) as server:
                async with connected_client(server) as client:
                    assert (await client.create_relation(RELATION_SPEC)).status == 200
                    await client.bulk("r", [["a", 0, {"v": 1}], ["b", MICRO, {"v": 2}]])

                    snapshot = (await client.current("r")).json()
                    pin = snapshot["epoch"]["tt"]

                    await client.append("r", "c", 2 * MICRO, {"v": 3})
                    deleted = snapshot["rows"][0]["surrogate"]
                    await client.delete("r", deleted)

                    feed = (
                        await client.subscribe("r", since=pin, timeout=0.2)
                    ).json()
                    assert not feed["resync"]
                    assert [d["kind"] for d in feed["deltas"]] == ["insert", "close"]
                    assert all(epoch > pin for epoch in _epochs(feed))

                    state = {row["surrogate"]: row for row in snapshot["rows"]}
                    for delta in feed["deltas"]:
                        if delta["kind"] == "insert":
                            state[delta["element"]["surrogate"]] = delta["element"]
                        else:
                            state.pop(delta["element"]["surrogate"], None)
                    final = (await client.current("r")).json()
                    assert sorted(state) == sorted(
                        row["surrogate"] for row in final["rows"]
                    )

        asyncio.run(scenario())

    def test_blocked_poll_wakes_on_write(self, tmp_path) -> None:
        async def scenario() -> None:
            async with running_server(_config(tmp_path)) as server:
                async with connected_client(server) as poller:
                    async with connected_client(server) as writer:
                        assert (
                            await writer.create_relation(RELATION_SPEC)
                        ).status == 200

                        async def poll():
                            return await poller.subscribe("r", timeout=10.0)

                        task = asyncio.create_task(poll())
                        await asyncio.sleep(0.05)  # poller parks first
                        await writer.append("r", "a", 0, {"v": 1})
                        feed = (await asyncio.wait_for(task, 5.0)).json()
                        assert feed["count"] == 1
                        assert feed["deltas"][0]["kind"] == "insert"
                        assert feed["deltas"][0]["element"]["object"] == "a"
                        assert feed["cursor"] == feed["deltas"][0]["epoch"]

        asyncio.run(scenario())

    def test_empty_poll_times_out_cleanly(self, tmp_path) -> None:
        async def scenario() -> None:
            async with running_server(_config(tmp_path)) as server:
                async with connected_client(server) as client:
                    assert (await client.create_relation(RELATION_SPEC)).status == 200
                    await client.append("r", "a", 0, {"v": 1})
                    feed = (
                        await client.subscribe("r", timeout=0.1)
                    ).json()  # since defaults to "now"
                    assert not feed["resync"]
                    assert feed["deltas"] == []

        asyncio.run(scenario())


class TestRestartOverRecoveredWal:
    def test_no_replay_of_delivered_deltas(self, tmp_path) -> None:
        """Satellite 3: the delivered stream never repeats across a
        restart, and post-restart mutations land strictly after every
        pre-crash epoch."""
        delivered: dict = {}

        async def before_restart() -> None:
            async with running_server(_config(tmp_path)) as server:
                async with connected_client(server) as client:
                    assert (await client.create_relation(RELATION_SPEC)).status == 200
                    opening = (await client.current("r")).json()["epoch"]["tt"]
                    await client.bulk(
                        "r", [["a", 0, {"v": 1}], ["b", MICRO, {"v": 2}]]
                    )
                    feed = (
                        await client.subscribe("r", since=opening, timeout=0.2)
                    ).json()
                    assert feed["count"] == 2
                    delivered["cursor"] = feed["cursor"]
                    delivered["epochs"] = _epochs(feed)

        async def after_restart() -> None:
            async with running_server(_config(tmp_path)) as server:
                async with connected_client(server) as client:
                    assert (await client.create_relation(RELATION_SPEC)).status == 200
                    # Recovery adopted both rows.
                    assert (await client.current("r")).json()["count"] == 2

                    # Resuming from the pre-crash cursor: either a clean
                    # empty resume or an explicit resync order -- never
                    # a duplicate of what was already delivered.
                    feed = (
                        await client.subscribe(
                            "r", since=delivered["cursor"], timeout=0.1
                        )
                    ).json()
                    assert feed["deltas"] == []

                    # An ancient cursor is ordered to resync: the deltas
                    # it would need predate the recovered journal.
                    stale = (
                        await client.subscribe("r", since=0, timeout=0.1)
                    ).json()
                    assert stale["resync"] is True
                    assert stale["deltas"] == []

                    # New mutations flow with epochs strictly after
                    # everything delivered before the crash.
                    pin = (await client.current("r")).json()["epoch"]["tt"]
                    await client.append("r", "c", 2 * MICRO, {"v": 3})
                    fresh = (
                        await client.subscribe("r", since=pin, timeout=0.2)
                    ).json()
                    assert fresh["count"] == 1
                    assert all(
                        epoch > max(delivered["epochs"])
                        for epoch in _epochs(fresh)
                    )

        asyncio.run(before_restart())
        asyncio.run(after_restart())

    def test_views_recover_with_the_relation(self, tmp_path) -> None:
        """A view registered after restart sees the recovered rows --
        registration always absorbs pre-existing state."""

        async def before() -> None:
            async with running_server(_config(tmp_path)) as server:
                async with connected_client(server) as client:
                    assert (await client.create_relation(RELATION_SPEC)).status == 200
                    await client.bulk(
                        "r", [["a", 0, {"v": 1}], ["b", MICRO, {"v": 2}]]
                    )

        async def after() -> None:
            async with running_server(_config(tmp_path)) as server:
                async with connected_client(server) as client:
                    assert (await client.create_relation(RELATION_SPEC)).status == 200
                    assert (
                        await client.register_view(
                            "r", {"name": "live", "kind": "current"}
                        )
                    ).status == 200
                    view = (await client.view("r", "live")).json()
                    assert [row["object"] for row in view["rows"]] == ["a", "b"]

        asyncio.run(before())
        asyncio.run(after())
