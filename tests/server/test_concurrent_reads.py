"""Satellite 1: one writer, many readers, zero consistency violations.

The server's read model promises that every response is a snapshot of
*some committed epoch* -- never a torn view of a half-applied batch.
These tests drive a single writer task alongside >= 8 concurrent
readers over real sockets and verify the promise mechanically:

* the writer records the exact canonical state after every committed
  batch, keyed by the epoch version the ack reported;
* each reader records ``(endpoint, parameter, epoch, rows)``
  observations without asserting inline (a reader can observe an epoch
  before the writer coroutine has processed its own ack);
* after the run, every observation must equal the recorded state at
  its epoch -- whole-state for ``current``/``rollback``, the vt-filter
  of it for ``timeslice``.

Workloads come from the shared Hypothesis strategies
(:func:`tests.strategies.insert_rows`), so the batches exercise the
same shapes as the library-level property suites.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Tuple

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.server import ServerClient, ServerConfig
from tests.server.harness import connected_client, running_server
from tests.strategies import insert_rows

MICRO = 1_000_000

READERS = 8
READS_PER_READER = 6

Observation = Tuple[str, Any, int, List[Dict[str, Any]]]


def _canonical(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return sorted(rows, key=lambda row: (row["tt_start"], row["surrogate"]))


def _wire_rows(batch) -> List[List[Any]]:
    """``insert_rows`` output -> wire form (microsecond vt integers)."""
    return [[obj, vt.microseconds, attrs] for obj, vt, attrs in batch]


async def _writer(
    client: ServerClient,
    batches,
    expected: Dict[int, List[Dict[str, Any]]],
    done: asyncio.Event,
) -> None:
    """Ingest every batch, recording the full state per committed epoch."""
    state: List[Dict[str, Any]] = []
    try:
        for batch in batches:
            response = await client.bulk("readings", _wire_rows(batch))
            assert response.status == 200, response.body
            body = response.json()
            state = _canonical(state + body["elements"])
            expected[body["epoch"]["version"]] = list(state)
    finally:
        done.set()


async def _reader(
    client: ServerClient,
    vt_pool: List[int],
    observations: List[Observation],
    done: asyncio.Event,
    index: int,
) -> None:
    """Cycle read endpoints until the writer finishes (>= a fixed floor)."""
    reads = 0
    while reads < READS_PER_READER or not done.is_set():
        kind = ("current", "timeslice", "rollback")[(index + reads) % 3]
        if kind == "current":
            response = await client.current("readings")
            parameter: Any = None
        elif kind == "timeslice":
            parameter = vt_pool[(index * 7 + reads) % len(vt_pool)]
            response = await client.timeslice("readings", parameter)
        else:
            # Far beyond any committed stamp: clamped to the pin, so it
            # must equal the full state at the served epoch.
            parameter = 10**15
            response = await client.rollback("readings", parameter)
        assert response.status == 200, response.body
        body = response.json()
        observations.append((kind, parameter, body["epoch"]["version"], body["rows"]))
        reads += 1
        if reads > 500:  # safety valve; the writer should finish long before
            break
        await asyncio.sleep(0)


def _verify(
    observations: List[Observation], expected: Dict[int, List[Dict[str, Any]]]
) -> None:
    assert observations, "readers made no observations"
    for kind, parameter, version, rows in observations:
        assert version in expected, (
            f"{kind} served epoch {version}, which no committed batch produced "
            f"(committed: {sorted(expected)})"
        )
        snapshot = expected[version]
        if kind == "timeslice":
            reference = [row for row in snapshot if row["vt"] == parameter]
        else:
            reference = snapshot
        assert _canonical(rows) == _canonical(reference), (
            f"{kind}({parameter!r}) at epoch {version} returned a state no "
            f"committed epoch ever held"
        )


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    batches=st.lists(
        insert_rows(min_size=1, max_size=8), min_size=2, max_size=5
    )
)
def test_concurrent_readers_see_only_committed_epochs(batches) -> None:
    async def scenario() -> None:
        async with running_server() as server:
            async with connected_client(server) as admin:
                created = await admin.create_relation(
                    {"name": "readings", "time_varying": ["reading"]}
                )
                assert created.status == 200
                expected: Dict[int, List[Dict[str, Any]]] = {0: []}
                observations: List[Observation] = []
                done = asyncio.Event()
                vt_pool = sorted(
                    {vt.microseconds for batch in batches for _, vt, _ in batch}
                )

                reader_clients = [
                    ServerClient(server.config.host, server.port)
                    for _ in range(READERS)
                ]
                for client in reader_clients:
                    await client.connect()
                try:
                    tasks = [
                        asyncio.ensure_future(
                            _reader(client, vt_pool, observations, done, index)
                        )
                        for index, client in enumerate(reader_clients)
                    ]
                    await _writer(admin, batches, expected, done)
                    await asyncio.gather(*tasks)
                finally:
                    for client in reader_clients:
                        await client.close()

                _verify(observations, expected)
                # The writer committed every batch: final epoch holds the
                # union of all rows.
                final = await admin.current("readings")
                assert final.json()["count"] == sum(len(batch) for batch in batches)

    asyncio.run(scenario())


def test_poison_batch_rejected_whole_under_concurrent_reads() -> None:
    """A constraint-violating batch commits nothing and bumps no epoch.

    The relation declares ``retroactive`` (vt <= tt); a batch with a
    far-future vt must be rejected atomically (409) while readers keep
    observing only the committed states around it.
    """

    async def scenario() -> None:
        async with running_server() as server:
            async with connected_client(server) as admin:
                await admin.create_relation(
                    {
                        "name": "readings",
                        "time_varying": ["reading"],
                        "specializations": ["retroactive"],
                    }
                )
                expected: Dict[int, List[Dict[str, Any]]] = {0: []}
                observations: List[Observation] = []
                done = asyncio.Event()

                async def writer() -> None:
                    state: List[Dict[str, Any]] = []
                    try:
                        for round_number in range(4):
                            good = await admin.bulk(
                                "readings", [["alpha", 0, {"reading": round_number}]]
                            )
                            assert good.status == 200
                            state = _canonical(state + good.json()["elements"])
                            expected[good.json()["epoch"]["version"]] = list(state)

                            poison = await admin.bulk(
                                "readings",
                                [
                                    ["beta", 0, {"reading": -1}],
                                    ["beta", 10**15, {"reading": -2}],
                                ],
                            )
                            assert poison.status == 409, poison.body
                            # Nothing from the poison batch committed.
                            check = await admin.current("readings")
                            assert _canonical(check.json()["rows"]) == state
                    finally:
                        done.set()

                reader_clients = [
                    ServerClient(server.config.host, server.port) for _ in range(READERS)
                ]
                for client in reader_clients:
                    await client.connect()
                try:
                    tasks = [
                        asyncio.ensure_future(
                            _reader(client, [0], observations, done, index)
                        )
                        for index, client in enumerate(reader_clients)
                    ]
                    await writer()
                    await asyncio.gather(*tasks)
                finally:
                    for client in reader_clients:
                        await client.close()

                _verify(observations, expected)
                # Exactly the four good batches committed.
                assert sorted(expected) == [0, 1, 2, 3, 4]

    asyncio.run(scenario())
