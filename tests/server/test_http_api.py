"""Route-level coverage of the HTTP/JSON surface.

One relation, one client, every endpoint: catalog, ingest, pinned
reads, TQL, explain, metrics -- plus the protocol-error paths (bad
JSON, bad routes, bad parameters) that must answer with clean HTTP
statuses rather than dropped connections.
"""

from __future__ import annotations

import asyncio
import json

from repro.server import ServerConfig
from tests.server.harness import connected_client, running_server

MICRO = 1_000_000  # one second-granularity tick on the wire


def test_health_catalog_and_stats() -> None:
    async def scenario() -> None:
        async with running_server() as server:
            async with connected_client(server) as client:
                health = await client.health()
                assert health.status == 200
                assert health.json()["status"] == "ok"

                created = await client.create_relation(
                    {
                        "name": "readings",
                        "kind": "event",
                        "time_varying": ["reading"],
                        "specializations": ["retroactive"],
                    }
                )
                assert created.status == 200
                assert created.json()["epoch"]["elements"] == 0

                listing = await client.request("GET", "/relations")
                info = listing.json()["relations"]["readings"]
                assert info["kind"] == "event"
                assert info["specializations"] == ["retroactive"]

                stats = await client.request("GET", "/relations/readings")
                assert stats.json()["elements"] == 0
                assert stats.json()["live"] == 0

    asyncio.run(scenario())


def test_append_bulk_delete_roundtrip() -> None:
    async def scenario() -> None:
        async with running_server() as server:
            async with connected_client(server) as client:
                await client.create_relation({"name": "r", "time_varying": ["v"]})

                appended = await client.append("r", "alpha", 0, {"v": 1})
                assert appended.status == 200
                element = appended.json()["elements"][0]
                assert element["object"] == "alpha"
                assert element["varying"] == {"v": 1}

                bulked = await client.bulk(
                    "r", [["beta", MICRO, {"v": 2}], ["gamma", 2 * MICRO, None]]
                )
                assert bulked.status == 200
                assert bulked.json()["count"] == 2
                # Epoch advances once per committed batch.
                assert bulked.json()["epoch"]["version"] == 2

                current = await client.current("r")
                assert current.json()["count"] == 3

                surrogate = element["surrogate"]
                deleted = await client.delete("r", surrogate)
                assert deleted.status == 200
                assert deleted.json()["elements"][0]["tt_stop"] < 2**62

                after = await client.current("r")
                assert after.json()["count"] == 2
                assert surrogate not in [row["surrogate"] for row in after.json()["rows"]]

                # Deleting twice is a clean 404, not a wedged writer.
                again = await client.delete("r", surrogate)
                assert again.status == 404
                still = await client.current("r")
                assert still.json()["count"] == 2

    asyncio.run(scenario())


def test_pinned_reads_timeslice_overlap_rollback() -> None:
    async def scenario() -> None:
        async with running_server() as server:
            async with connected_client(server) as client:
                await client.create_relation({"name": "r", "time_varying": ["v"]})
                first = await client.bulk("r", [["a", 5 * MICRO, {"v": 1}]])
                pin_after_first = first.json()["epoch"]["tt"]
                await client.bulk("r", [["b", 5 * MICRO, {"v": 2}], ["c", 9 * MICRO, {"v": 3}]])

                slice_at_5 = await client.timeslice("r", 5 * MICRO)
                assert slice_at_5.json()["count"] == 2

                overlap = await client.overlap("r", 4 * MICRO, 6 * MICRO)
                assert overlap.json()["count"] == 2
                bad_window = await client.overlap("r", 6 * MICRO, 4 * MICRO)
                assert bad_window.status == 400

                rolled = await client.rollback("r", pin_after_first)
                assert rolled.json()["count"] == 1
                assert rolled.json()["rows"][0]["object"] == "a"

                # A rollback beyond the pin is clamped to the pin, never
                # a glimpse of uncommitted state.
                future = await client.rollback("r", 10**15)
                assert future.json()["count"] == 3

                # Bitemporal slice: timeslice AS OF the first epoch.
                sliced = await client.timeslice("r", 5 * MICRO, as_of=pin_after_first)
                assert sliced.json()["count"] == 1

    asyncio.run(scenario())


def test_tql_and_explain() -> None:
    async def scenario() -> None:
        async with running_server() as server:
            async with connected_client(server) as client:
                await client.create_relation({"name": "r", "time_varying": ["v"]})
                await client.bulk(
                    "r", [["a", 0, {"v": 1}], ["b", MICRO, {"v": 2}], ["c", MICRO, {"v": 3}]]
                )

                rows = await client.query("SELECT v FROM r VALID AT 1s")
                assert rows.status == 200
                assert sorted(row["v"] for row in rows.json()["rows"]) == [2, 3]

                counted = await client.query("SELECT COUNT(*) FROM r")
                assert counted.json()["rows"] == [{"count": 3}]

                explained = await client.explain("r", "SELECT v FROM r VALID AT 1s")
                body = explained.json()
                assert body["strategy"]
                assert body["returned"] == 2
                assert "strategy" in body["rendered"]

                planned = await client.explain(
                    "r", "SELECT v FROM r VALID AT 1s", execute=False
                )
                assert planned.json()["executed"] is False
                assert "rows" not in planned.json()

                bad = await client.query("VALID AT 1s FROM r")
                assert bad.status == 400

    asyncio.run(scenario())


def test_protocol_errors_are_clean_http() -> None:
    async def scenario() -> None:
        async with running_server() as server:
            async with connected_client(server) as client:
                assert (await client.request("GET", "/nope")).status == 404
                assert (await client.request("PUT", "/relations")).status == 404
                assert (await client.current("ghost")).status == 400

                await client.create_relation({"name": "r", "time_varying": ["v"]})
                # Undeclared attribute -> schema rejection via the queue.
                bad_attr = await client.bulk("r", [["a", 0, {"undeclared": 1}]])
                assert bad_attr.status == 400

                # Interval vt on an event relation.
                bad_vt = await client.bulk("r", [["a", [0, MICRO], None]])
                assert bad_vt.status == 400

                # Malformed JSON body.
                raw = await client.request(
                    "POST", "/relations/r/bulk", payload=None, query=None
                )
                assert raw.status == 400

                # Bad query parameter.
                bad_param = await client.request(
                    "GET", "/relations/r/timeslice", query={"vt": "soon"}
                )
                assert bad_param.status == 400

                # Duplicate relation.
                dupe = await client.create_relation({"name": "r"})
                assert dupe.status == 400

                # Unknown engine kind.
                engine = await client.create_relation({"name": "s", "engine": "ram"})
                assert engine.status == 400

                # The connection survived every error above.
                assert (await client.health()).status == 200

    asyncio.run(scenario())


def test_fire_and_forget_ingest() -> None:
    async def scenario() -> None:
        async with running_server() as server:
            async with connected_client(server) as client:
                await client.create_relation({"name": "r", "time_varying": ["v"]})
                queued = await client.bulk("r", [["a", 0, {"v": 1}]], wait=False)
                assert queued.status == 202
                assert queued.json() == {"queued": True, "rows": 1}
                await asyncio.sleep(0)  # let the writer drain
                for _ in range(50):
                    if (await client.current("r")).json()["count"] == 1:
                        break
                    await asyncio.sleep(0.01)
                assert (await client.current("r")).json()["count"] == 1

    asyncio.run(scenario())


def test_canonical_payload_ordering() -> None:
    """The same state serializes to the same bytes, read after read."""

    async def scenario() -> None:
        async with running_server() as server:
            async with connected_client(server) as client:
                await client.create_relation({"name": "r", "time_varying": ["v"]})
                await client.bulk(
                    "r",
                    [["b", 3 * MICRO, {"v": 1}], ["a", MICRO, {"v": 2}], ["c", 2 * MICRO, None]],
                )
                one = await client.current("r")
                two = await client.current("r")
                assert one.body == two.body
                rows = one.json()["rows"]
                assert [row["tt_start"] for row in rows] == sorted(
                    row["tt_start"] for row in rows
                )
                # Canonical JSON: compact separators, sorted keys.
                assert one.body == json.dumps(
                    one.json(), sort_keys=True, separators=(",", ":")
                ).encode()

    asyncio.run(scenario())


def test_metrics_endpoint_reports_request_counters() -> None:
    async def scenario() -> None:
        async with running_server(ServerConfig(port=0, metrics=True)) as server:
            async with connected_client(server) as client:
                await client.create_relation({"name": "r", "time_varying": ["v"]})
                await client.bulk("r", [["a", 0, {"v": 1}]])
                await client.current("r")
                snapshot = (await client.metrics()).json()
                assert snapshot["enabled"] is True
                counters = snapshot["metrics"]["counters"]
                assert counters["server.requests"] >= 3
                assert counters["server.writer.commits"] == 1
                assert counters["server.rows_served"] >= 1
                histograms = snapshot["metrics"]["histograms"]
                assert "server.latency.current" in histograms
                assert histograms["server.latency.current"]["count"] >= 1
                assert "p99" in histograms["server.latency.current"]

    asyncio.run(scenario())
