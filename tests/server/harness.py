"""Shared plumbing for the server test suites.

Every suite runs a real :class:`TemporalServer` on an ephemeral
loopback port inside the test's own event loop (the repo's test
harness has no pytest-asyncio; tests are sync functions that
``asyncio.run`` one coroutine).  The context managers here guarantee
the server is stopped -- and the process-global metrics state
restored -- even when an assertion fails mid-flight.
"""

from __future__ import annotations

from contextlib import asynccontextmanager
from typing import AsyncIterator, Optional, Sequence

from repro.database import TemporalDatabase
from repro.observability import metrics as _metrics
from repro.relation.temporal_relation import TemporalRelation
from repro.server import ServerClient, ServerConfig, TemporalServer


@asynccontextmanager
async def running_server(
    config: Optional[ServerConfig] = None,
    relations: Sequence[TemporalRelation] = (),
    database: Optional[TemporalDatabase] = None,
) -> AsyncIterator[TemporalServer]:
    """A started server (ephemeral port), stopped on exit.

    The metrics registry is cleared on entry so counter assertions see
    only this server's activity.
    """
    server = TemporalServer(config or ServerConfig(port=0), database=database)
    for relation in relations:
        server.attach_relation(relation)
    _metrics.reset()
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


@asynccontextmanager
async def connected_client(server: TemporalServer) -> AsyncIterator[ServerClient]:
    client = ServerClient(server.config.host, server.port)
    await client.connect()
    try:
        yield client
    finally:
        await client.close()
