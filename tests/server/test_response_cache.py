"""The server's epoch-keyed response cache.

Pinned reads over an unchanged relation must answer from the cache
(``X-Repro-Cache: hit``) with a byte-identical body; any write rolls
the pin and forces a recompute.  The cache is on by default, sized by
``ServerConfig.cache_entries``, and killed entirely by
``cache_entries=0`` or ``REPRO_RESULT_CACHE=0``.
"""

from __future__ import annotations

import asyncio
import os
from contextlib import contextmanager

from repro.server import ServerConfig
from tests.server.harness import connected_client, running_server

MICRO = 1_000_000  # one second-granularity tick on the wire


@contextmanager
def cache_env(value):
    old = os.environ.get("REPRO_RESULT_CACHE")
    if value is None:
        os.environ.pop("REPRO_RESULT_CACHE", None)
    else:
        os.environ["REPRO_RESULT_CACHE"] = value
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_RESULT_CACHE", None)
        else:
            os.environ["REPRO_RESULT_CACHE"] = old


async def _seeded(client, name="readings", rows=4):
    await client.create_relation(
        {"name": name, "kind": "event", "time_varying": ["reading"]}
    )
    for i in range(rows):
        await client.append(name, f"obj-{i}", (i + 1) * MICRO, {"reading": i})


def test_miss_then_hit_with_identical_body() -> None:
    async def scenario() -> None:
        async with running_server() as server:
            async with connected_client(server) as client:
                await _seeded(client)
                first = await client.timeslice("readings", vt=2 * MICRO)
                assert first.status == 200
                assert first.cache_status == "miss"
                second = await client.timeslice("readings", vt=2 * MICRO)
                assert second.cache_status == "hit"
                assert second.body == first.body

    with cache_env(None):
        asyncio.run(scenario())


def test_every_pinned_get_endpoint_caches() -> None:
    async def scenario() -> None:
        async with running_server() as server:
            async with connected_client(server) as client:
                await _seeded(client)
                reads = (
                    lambda: client.current("readings"),
                    lambda: client.timeslice("readings", vt=3 * MICRO),
                    # An as_of beyond the pin clamps to it and shares the
                    # default-as_of entry, so probe one *before* the pin.
                    lambda: client.timeslice("readings", vt=3 * MICRO, as_of=MICRO),
                    lambda: client.request(
                        "GET",
                        "/relations/readings/overlap"
                        f"?start={MICRO}&end={3 * MICRO}",
                    ),
                    lambda: client.request(
                        "GET", f"/relations/readings/rollback?tt={10 * MICRO}"
                    ),
                )
                for read in reads:
                    first = await read()
                    assert first.status == 200
                    assert first.cache_status == "miss"
                    second = await read()
                    assert second.cache_status == "hit"
                    assert second.body == first.body

    with cache_env(None):
        asyncio.run(scenario())


def test_distinct_parameters_never_share_entries() -> None:
    async def scenario() -> None:
        async with running_server() as server:
            async with connected_client(server) as client:
                await _seeded(client)
                at_two = await client.timeslice("readings", vt=2 * MICRO)
                at_three = await client.timeslice("readings", vt=3 * MICRO)
                assert at_three.cache_status == "miss"
                assert at_three.body != at_two.body

    with cache_env(None):
        asyncio.run(scenario())


def test_write_rolls_the_pin_and_recomputes() -> None:
    async def scenario() -> None:
        async with running_server() as server:
            async with connected_client(server) as client:
                await _seeded(client)
                before = await client.timeslice("readings", vt=2 * MICRO)
                assert (await client.timeslice("readings", vt=2 * MICRO)).cache_status == "hit"

                await client.append("readings", "late", 2 * MICRO, {"reading": 99})
                after = await client.timeslice("readings", vt=2 * MICRO)
                assert after.cache_status == "miss"
                assert after.json()["count"] == before.json()["count"] + 1
                assert (await client.timeslice("readings", vt=2 * MICRO)).cache_status == "hit"

    with cache_env(None):
        asyncio.run(scenario())


def test_query_endpoint_caches_per_statement() -> None:
    async def scenario() -> None:
        async with running_server() as server:
            async with connected_client(server) as client:
                await _seeded(client)
                statement = "SELECT * FROM readings VALID AT 2"
                first = await client.query(statement)
                assert first.status == 200
                assert first.cache_status == "miss"
                second = await client.query(statement)
                assert second.cache_status == "hit"
                assert second.body == first.body

                await client.append("readings", "late", 2 * MICRO, {"reading": 7})
                third = await client.query(statement)
                assert third.cache_status == "miss"
                assert third.json()["count"] == first.json()["count"] + 1

    with cache_env(None):
        asyncio.run(scenario())


def test_tiny_cache_evicts_but_stays_correct() -> None:
    async def scenario() -> None:
        config = ServerConfig(port=0, cache_entries=2)
        async with running_server(config) as server:
            async with connected_client(server) as client:
                await _seeded(client)
                bodies = {}
                for tick in (1, 2, 3, 4):
                    bodies[tick] = (
                        await client.timeslice("readings", vt=tick * MICRO)
                    ).body
                # Only two entries fit; the early ticks were evicted and
                # recompute on return -- to the same bytes.
                evicted = await client.timeslice("readings", vt=1 * MICRO)
                assert evicted.cache_status == "miss"
                assert evicted.body == bodies[1]
                hot = await client.timeslice("readings", vt=1 * MICRO)
                assert hot.cache_status == "hit"

    with cache_env(None):
        asyncio.run(scenario())


def test_cache_entries_zero_disables_the_header() -> None:
    async def scenario() -> None:
        config = ServerConfig(port=0, cache_entries=0)
        async with running_server(config) as server:
            async with connected_client(server) as client:
                await _seeded(client)
                for _ in range(2):
                    response = await client.timeslice("readings", vt=2 * MICRO)
                    assert response.status == 200
                    assert response.cache_status is None

    with cache_env(None):
        asyncio.run(scenario())


def test_env_kill_switch_disables_the_server_cache() -> None:
    async def scenario() -> None:
        async with running_server() as server:
            async with connected_client(server) as client:
                await _seeded(client)
                for _ in range(2):
                    response = await client.timeslice("readings", vt=2 * MICRO)
                    assert response.cache_status is None

    with cache_env("0"):
        asyncio.run(scenario())


def test_error_responses_are_never_cached() -> None:
    async def scenario() -> None:
        async with running_server() as server:
            async with connected_client(server) as client:
                await _seeded(client)
                for _ in range(2):
                    response = await client.request(
                        "GET", "/relations/readings/timeslice?vt=bogus"
                    )
                    assert response.status == 400
                    assert response.cache_status != "hit"

    with cache_env(None):
        asyncio.run(scenario())
