"""Satellite 2: the HTTP surface is a faithful shim over the library.

The same operation sequence is replayed two ways -- over HTTP against
a running server, and directly against a :class:`TemporalRelation` --
on each of the three storage engines.  Because both sides start from a
fresh logical clock and surrogate generator and apply identical
operations in identical order, they must produce identical stamps, and
therefore *byte-identical* canonical response payloads.

Three equivalences are asserted:

* server rows == library rows, byte-for-byte, per engine and per read
  (current / timeslice / bitemporal slice / rollback / TQL);
* the canonical payloads agree *across* the three engines;
* ``explain`` picks the same strategy over HTTP as in-process, per
  engine (the planner sees the same declared specializations and the
  same statistics either way).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List

from repro.chronos.timestamp import Timestamp
from repro.query import tql
from repro.relation.schema import TemporalSchema
from repro.relation.temporal_relation import TemporalRelation
from repro.server import ServerConfig
from repro.server.protocol import elements_to_json, rows_to_json
from repro.storage.logfile import LogFileEngine
from repro.storage.memory import MemoryEngine
from repro.storage.sqlite_backend import SQLiteEngine
from tests.server.harness import connected_client, running_server

MICRO = 1_000_000
ENGINES = ("memory", "logfile", "sqlite")

SCHEMA_SPEC = {
    "name": "readings",
    "kind": "event",
    "time_varying": ["reading", "status"],
    "specializations": ["retroactive"],
}

#: The replayed workload: three batches, then a deletion of the first
#: element.  All vts are retroactive-compliant (vt <= tt) because the
#: fresh clock starts ahead of every vt used here.
BATCHES = [
    [["alpha", 0, {"reading": 1, "status": "ok"}]],
    [
        ["beta", 1 * MICRO, {"reading": 2, "status": "ok"}],
        ["alpha", 2 * MICRO, {"reading": 3, "status": None}],
    ],
    [
        ["gamma", 2 * MICRO, {"reading": 4, "status": "hot"}],
        ["beta", 0, {"reading": 5, "status": "ok"}],
    ],
]

TQL = "SELECT reading FROM readings VALID AT 2s"


def _canonical_bytes(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def _library_engine(kind: str, tmp_path, tag: str):
    if kind == "memory":
        return MemoryEngine()
    if kind == "logfile":
        return LogFileEngine(str(tmp_path / f"lib-{tag}.log"))
    return SQLiteEngine(str(tmp_path / f"lib-{tag}.sqlite"))


def _replay_library(kind: str, tmp_path) -> Dict[str, Any]:
    """The workload, straight through the library; canonical payloads."""
    schema = TemporalSchema(
        name="readings",
        time_varying=("reading", "status"),
        specializations=["retroactive"],
    )
    relation = TemporalRelation(schema, engine=_library_engine(kind, tmp_path, kind))
    epochs: List[int] = []
    for batch in BATCHES:
        relation.append_many(
            [
                (obj, Timestamp(vt, "microsecond"), attrs)
                for obj, vt, attrs in batch
            ]
        )
        epochs.append(relation.pin_epoch().tt_micro)
    first = min(e.element_surrogate for e in relation.all_elements())
    relation.delete(first)

    report = relation.explain(TQL, execute=False)
    results = {
        "current": _canonical_bytes(elements_to_json(relation.current())),
        "timeslice": _canonical_bytes(
            elements_to_json(relation.valid_at(Timestamp(2 * MICRO, "microsecond")))
        ),
        "bitemporal": _canonical_bytes(
            elements_to_json(
                relation.valid_at(
                    Timestamp(2 * MICRO, "microsecond"),
                    as_of_tt=Timestamp(epochs[1], "microsecond"),
                )
            )
        ),
        "rollback": _canonical_bytes(
            elements_to_json(relation.as_of(Timestamp(epochs[1], "microsecond")))
        ),
        "tql": _canonical_bytes(rows_to_json(tql.execute(TQL, relation))),
        "strategy": report.strategy,
        "first_surrogate": first,
        "epochs": epochs,
    }
    if hasattr(relation.engine, "close"):
        relation.engine.close()
    return results


async def _replay_server(kind: str, tmp_path) -> Dict[str, Any]:
    """The same workload, over HTTP; canonical payloads."""
    config = ServerConfig(port=0, data_dir=str(tmp_path / f"srv-{kind}"), close_engines=True)
    async with running_server(config) as server:
        async with connected_client(server) as client:
            spec = dict(SCHEMA_SPEC)
            if kind != "memory":
                spec["engine"] = kind
            created = await client.create_relation(spec)
            assert created.status == 200, created.body

            epochs: List[int] = []
            elements: List[Dict[str, Any]] = []
            for batch in BATCHES:
                response = await client.bulk("readings", batch)
                assert response.status == 200, response.body
                epochs.append(response.json()["epoch"]["tt"])
                elements.extend(response.json()["elements"])
            first = min(row["surrogate"] for row in elements)
            deleted = await client.delete("readings", first)
            assert deleted.status == 200, deleted.body

            async def rows_bytes(response) -> bytes:
                assert response.status == 200, response.body
                return _canonical_bytes(response.json()["rows"])

            explained = await client.explain("readings", TQL, execute=False)
            assert explained.status == 200, explained.body
            queried = await client.query(TQL)
            assert queried.status == 200, queried.body
            return {
                "current": await rows_bytes(await client.current("readings")),
                "timeslice": await rows_bytes(
                    await client.timeslice("readings", 2 * MICRO)
                ),
                "bitemporal": await rows_bytes(
                    await client.timeslice("readings", 2 * MICRO, as_of=epochs[1])
                ),
                "rollback": await rows_bytes(
                    await client.rollback("readings", epochs[1])
                ),
                "tql": _canonical_bytes(queried.json()["rows"]),
                "strategy": explained.json()["strategy"],
                "first_surrogate": first,
                "epochs": epochs,
            }


READ_KEYS = ("current", "timeslice", "bitemporal", "rollback", "tql")


def test_http_and_library_agree_per_engine(tmp_path) -> None:
    for kind in ENGINES:
        library = _replay_library(kind, tmp_path)
        server = asyncio.run(_replay_server(kind, tmp_path))
        assert server["epochs"] == library["epochs"], kind
        assert server["first_surrogate"] == library["first_surrogate"], kind
        for key in READ_KEYS:
            assert server[key] == library[key], f"{kind}: {key} diverged"
        assert server["strategy"] == library["strategy"], kind


def test_engines_agree_with_each_other(tmp_path) -> None:
    """The canonical codec hides engine iteration order entirely."""
    payloads = {
        kind: asyncio.run(_replay_server(kind, tmp_path)) for kind in ENGINES
    }
    reference = payloads["memory"]
    for kind in ("logfile", "sqlite"):
        for key in READ_KEYS:
            assert payloads[kind][key] == reference[key], f"{kind}: {key} diverged"


def test_strategies_agree_across_engines(tmp_path) -> None:
    """Strategy selection is engine-independent unless an engine brings
    its own index.

    Current-state statements plan identically on all three engines.
    The valid-timeslice statement plans identically on the two
    scan-based engines; SQLite legitimately diverges to its native
    index (``engine-index``) -- a declared capability, not drift --
    and the server-vs-library parity for that choice is covered by
    :func:`test_http_and_library_agree_per_engine`.
    """
    current_tql = "SELECT reading FROM readings"
    slice_strategies = {}
    current_strategies = {}
    for kind in ENGINES:
        schema = TemporalSchema(
            name="readings",
            time_varying=("reading", "status"),
            specializations=["retroactive"],
        )
        relation = TemporalRelation(
            schema, engine=_library_engine(kind, tmp_path, f"strategy-{kind}")
        )
        relation.append_many(
            [
                (obj, Timestamp(vt, "microsecond"), attrs)
                for batch in BATCHES
                for obj, vt, attrs in batch
            ]
        )
        slice_strategies[kind] = relation.explain(TQL, execute=False).strategy
        current_strategies[kind] = relation.explain(
            current_tql, execute=False
        ).strategy
        if hasattr(relation.engine, "close"):
            relation.engine.close()

    assert len(set(current_strategies.values())) == 1, current_strategies
    assert slice_strategies["memory"] == slice_strategies["logfile"], slice_strategies
    assert slice_strategies["sqlite"] in (
        slice_strategies["memory"],
        "engine-index",
    ), slice_strategies
