"""Satellite 3: fault injection through the HTTP surface.

The WAL fault-injection harness (``tests/faults.py``) armed the
engine's file handle directly; here the same faults fire *underneath a
running server* and the claims move up a layer:

* a torn WAL write mid-bulk answers 500, commits nothing, and the
  engine repairs its tail in-process -- the very next ingest succeeds;
* a restart over the damaged (or crash-dirtied) log serves exactly the
  committed prefix, with fresh transaction times strictly after every
  adopted stamp (so the restart's epoch pin covers the recovered data);
* a torn *connection* -- a client dying mid-request -- never wedges
  the writer queue or the accept loop.
"""

from __future__ import annotations

import asyncio
import os

from repro.server import ServerConfig
from repro.storage.logfile import LogFileEngine
from tests.faults import arm, disarm
from tests.server.harness import connected_client, running_server

MICRO = 1_000_000

RELATION_SPEC = {
    "name": "r",
    "time_varying": ["v"],
    "engine": "logfile",
}


def _config(tmp_path) -> ServerConfig:
    return ServerConfig(port=0, data_dir=str(tmp_path), close_engines=True)


def test_torn_wal_write_mid_bulk_is_atomic_and_repaired(tmp_path) -> None:
    async def scenario() -> None:
        async with running_server(_config(tmp_path)) as server:
            async with connected_client(server) as client:
                assert (await client.create_relation(RELATION_SPEC)).status == 200
                first = await client.bulk("r", [["a", 0, {"v": 1}], ["b", MICRO, {"v": 2}]])
                assert first.status == 200

                engine = server.database.relation("r").engine
                wrapper = arm(engine, kind="torn")

                torn = await client.bulk("r", [["c", 2 * MICRO, {"v": 3}]])
                assert torn.status == 500, torn.body
                assert wrapper.faults_fired == 1

                # Nothing from the torn batch is visible; the epoch never
                # advanced past the first commit.
                state = await client.current("r")
                assert state.json()["count"] == 2
                assert state.json()["epoch"]["version"] == 1

                # The tail repair already reopened the file: ingest works
                # again without operator intervention.
                healed = await client.bulk("r", [["d", 3 * MICRO, {"v": 4}]])
                assert healed.status == 200, healed.body
                final = await client.current("r")
                assert final.json()["count"] == 3
                return final.json()["rows"]

    async def restart() -> None:
        async with running_server(_config(tmp_path)) as server:
            async with connected_client(server) as client:
                assert (await client.create_relation(RELATION_SPEC)).status == 200
                engine = server.database.relation("r").engine
                # The log is clean: the torn record was truncated by the
                # in-process repair, not left for restart recovery.
                assert engine.last_recovery is not None
                assert engine.last_recovery.clean

                state = await client.current("r")
                assert state.json()["count"] == 3
                assert [row["object"] for row in state.json()["rows"]] == ["a", "b", "d"]

                # Fresh stamps land strictly after the adopted ones.
                adopted_high = max(row["tt_start"] for row in state.json()["rows"])
                appended = await client.bulk("r", [["e", 4 * MICRO, {"v": 5}]])
                assert appended.status == 200
                assert appended.json()["elements"][0]["tt_start"] > adopted_high

    asyncio.run(scenario())
    asyncio.run(restart())


def test_fsync_fault_mid_bulk_commits_nothing(tmp_path) -> None:
    """An unacknowledged durability barrier rejects the whole batch."""

    async def scenario() -> None:
        async with running_server(_config(tmp_path)) as server:
            async with connected_client(server) as client:
                assert (await client.create_relation(RELATION_SPEC)).status == 200
                assert (await client.bulk("r", [["a", 0, {"v": 1}]])).status == 200

                engine = server.database.relation("r").engine
                # The batch write succeeds (operation 0); its fsync
                # (operation 1) fails.
                arm(engine, fail_at=1, kind="fsync")

                failed = await client.bulk("r", [["b", MICRO, {"v": 2}]])
                assert failed.status == 500
                state = await client.current("r")
                assert state.json()["count"] == 1

                retried = await client.bulk("r", [["b", MICRO, {"v": 2}]])
                assert retried.status == 200
                assert (await client.current("r")).json()["count"] == 2

    asyncio.run(scenario())


def test_crash_dirty_tail_truncated_on_restart(tmp_path) -> None:
    """A server that died mid-write leaves a torn frame on disk; the
    restarted server recovers the committed prefix and reports it."""

    async def populate() -> None:
        async with running_server(_config(tmp_path)) as server:
            async with connected_client(server) as client:
                assert (await client.create_relation(RELATION_SPEC)).status == 200
                assert (
                    await client.bulk("r", [["a", 0, {"v": 1}], ["b", MICRO, {"v": 2}]])
                ).status == 200

    async def restart() -> None:
        async with running_server(_config(tmp_path)) as server:
            async with connected_client(server) as client:
                assert (await client.create_relation(RELATION_SPEC)).status == 200
                engine = server.database.relation("r").engine
                report = engine.last_recovery
                assert report is not None and not report.clean

                state = await client.current("r")
                assert state.json()["count"] == 2
                assert sorted(row["object"] for row in state.json()["rows"]) == ["a", "b"]

                # And the recovered store accepts writes.
                assert (await client.bulk("r", [["c", 2 * MICRO, {"v": 3}]])).status == 200
                assert (await client.current("r")).json()["count"] == 3

    asyncio.run(populate())
    # Simulate the crash: a frame that only partially reached the disk.
    path = os.path.join(str(tmp_path), "r.logfile")
    with open(path, "ab") as handle:
        handle.write(b"\x00\x17half a frame, no checks")
    asyncio.run(restart())


def test_torn_connection_does_not_wedge_the_writer(tmp_path) -> None:
    """Clients dying mid-request (mid-headers or mid-body) must leave
    the accept loop and the writer queue fully serviceable."""

    async def scenario() -> None:
        async with running_server(_config(tmp_path)) as server:
            async with connected_client(server) as client:
                assert (await client.create_relation(RELATION_SPEC)).status == 200

                host, port = server.config.host, server.port

                # Die mid-headers.
                _, writer = await asyncio.open_connection(host, port)
                writer.write(b"POST /relations/r/bulk HTTP/1.1\r\nContent-")
                await writer.drain()
                writer.close()

                # Die mid-body: promise 4096 bytes, send 10, hang up.
                _, writer = await asyncio.open_connection(host, port)
                writer.write(
                    b"POST /relations/r/bulk HTTP/1.1\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: 4096\r\n\r\n"
                    b'{"rows": ['
                )
                await writer.drain()
                writer.close()

                await asyncio.sleep(0)  # let the server observe both EOFs

                # The writer still ingests and reads still serve.
                for round_number in range(3):
                    response = await client.bulk(
                        "r", [["a", round_number * MICRO, {"v": round_number}]]
                    )
                    assert response.status == 200, response.body
                assert (await client.current("r")).json()["count"] == 3
                assert (await client.health()).status == 200

    asyncio.run(scenario())


def test_arm_disarm_roundtrip(tmp_path) -> None:
    """``disarm`` removes an un-fired fault plan and restores the bare
    handle; firing faults disarm themselves via the tail repair."""
    engine = LogFileEngine(str(tmp_path / "plain.log"))
    try:
        wrapper = arm(engine, fail_at=99, kind="torn")
        assert engine._handle is wrapper
        assert disarm(engine) is True
        assert disarm(engine) is False  # already bare
        assert wrapper.faults_fired == 0

        armed = arm(engine, kind="torn")
        from repro.chronos.timestamp import Timestamp
        from repro.relation.element import Element

        try:
            engine.append(
                Element(
                    element_surrogate=1,
                    object_surrogate="a",
                    tt_start=Timestamp(0),
                    vt=Timestamp(0),
                )
            )
        except OSError:
            pass
        assert armed.faults_fired == 1
        # The repair replaced the handle: nothing left to disarm.
        assert disarm(engine) is False
    finally:
        engine.close()
