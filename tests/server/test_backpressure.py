"""Satellite 4: bounded-queue backpressure on the ingest path.

The writer queue is the server's only admission-control point: when it
fills, further ingest answers ``429 Too Many Requests`` with a
``Retry-After`` hint instead of buffering without bound.  These tests
freeze the writer (the test-only gate), fill the queue deliberately,
and assert the whole contract -- the 429s, the header, the rejected
counter, the queue-depth gauge, and a clean resume once the queue
drains.
"""

from __future__ import annotations

import asyncio

from repro.observability import metrics as _metrics
from repro.server import ServerConfig
from tests.server.harness import connected_client, running_server

# With the gate down the writer task still dequeues (and then parks on
# the gate), so total in-flight capacity is queue_limit + 1.
QUEUE_LIMIT = 2
CAPACITY = QUEUE_LIMIT + 1


def _snapshot():
    return _metrics.registry().snapshot()


def test_full_queue_answers_429_with_retry_after() -> None:
    async def scenario() -> None:
        config = ServerConfig(port=0, queue_limit=QUEUE_LIMIT)
        async with running_server(config) as server:
            async with connected_client(server) as client:
                await client.create_relation({"name": "r", "time_varying": ["v"]})
                server.pause_writer()

                statuses = []
                for index in range(CAPACITY + 3):
                    response = await client.bulk(
                        "r", [["a", index, {"v": index}]], wait=False
                    )
                    statuses.append(response.status)
                    if response.status == 429:
                        assert response.headers.get("retry-after") == "1"
                        assert "writer queue" in response.json()["error"]
                assert statuses == [202] * CAPACITY + [429] * 3

                # Reads are admission-exempt: they never queue behind
                # the writer, so a stalled ingest path cannot starve
                # them.  (The paused writer holds epoch 0.)
                current = await client.current("r")
                assert current.status == 200
                assert current.json()["epoch"]["version"] == 0
                assert current.json()["count"] == 0

                metrics = _snapshot()
                assert metrics["counters"]["server.backpressure.rejected"] == 3
                assert metrics["gauges"]["server.writer_queue_depth"] == QUEUE_LIMIT

                server.resume_writer()
                # A waited write behind the backlog proves the drain.
                final = await client.bulk("r", [["z", 99, {"v": 99}]])
                assert final.status == 200, final.body
                assert final.json()["epoch"]["version"] == CAPACITY + 1

                drained = await client.current("r")
                assert drained.json()["count"] == CAPACITY + 1

                metrics = _snapshot()
                assert metrics["gauges"]["server.writer_queue_depth"] == 0
                # No further rejections after the drain.
                assert metrics["counters"]["server.backpressure.rejected"] == 3

    asyncio.run(scenario())


def test_waited_writes_also_bounce_when_full() -> None:
    """``wait=true`` callers hit the same admission gate -- the server
    rejects rather than parking unbounded futures behind a slow
    writer."""

    async def scenario() -> None:
        config = ServerConfig(port=0, queue_limit=QUEUE_LIMIT)
        async with running_server(config) as server:
            async with connected_client(server) as filler:
                await filler.create_relation({"name": "r", "time_varying": ["v"]})
                server.pause_writer()
                for index in range(CAPACITY):
                    queued = await filler.bulk(
                        "r", [["a", index, {"v": index}]], wait=False
                    )
                    assert queued.status == 202

                async with connected_client(server) as other:
                    bounced = await other.bulk("r", [["b", 0, {"v": 0}]])
                    assert bounced.status == 429
                    assert bounced.headers.get("retry-after") == "1"

                server.resume_writer()
                settled = await filler.bulk("r", [["c", 0, {"v": 0}]])
                assert settled.status == 200
                assert settled.json()["epoch"]["version"] == CAPACITY + 1

    asyncio.run(scenario())


def test_resume_after_repeated_pressure_cycles() -> None:
    """Backpressure is stateless: rejecting never wedges the queue."""

    async def scenario() -> None:
        config = ServerConfig(port=0, queue_limit=QUEUE_LIMIT)
        async with running_server(config) as server:
            async with connected_client(server) as client:
                await client.create_relation({"name": "r", "time_varying": ["v"]})
                committed = 0
                for _cycle in range(3):
                    server.pause_writer()
                    accepted = 0
                    saw_429 = False
                    for index in range(CAPACITY + 2):
                        response = await client.bulk(
                            "r", [["a", index, {"v": index}]], wait=False
                        )
                        if response.status == 202:
                            accepted += 1
                        else:
                            assert response.status == 429
                            saw_429 = True
                    assert saw_429
                    server.resume_writer()
                    # One waited write flushes the cycle's backlog.
                    flush = await client.bulk("r", [["f", 0, {"v": 0}]])
                    assert flush.status == 200
                    committed += accepted + 1
                    state = await client.current("r")
                    assert state.json()["count"] == committed
                    assert state.json()["epoch"]["version"] == committed

                metrics = _snapshot()
                assert metrics["gauges"]["server.writer_queue_depth"] == 0
                assert metrics["counters"]["server.backpressure.rejected"] >= 3

    asyncio.run(scenario())
