"""Quickstart: a bitemporal relation with a declared specialization.

Builds the paper's chemical-plant temperature relation, exercises all
three query classes (current, historical/valid-time, rollback), shows
constraint enforcement rejecting a non-retroactive insert, and finishes
by letting the library *infer* the specializations from the data.

Run:  python examples/quickstart.py
"""

from repro import (
    ConstraintViolation,
    SimulatedWallClock,
    TemporalRelation,
    TemporalSchema,
    Timestamp,
)
from repro.chronos import Duration
from repro.core.taxonomy import classify


def main() -> None:
    # -- declare the schema, including its temporal specialization --------
    schema = TemporalSchema(
        name="plant_temperatures",
        key=("sensor",),
        time_invariant=("sensor",),
        time_varying=("celsius",),
        specializations=["retroactive", "delayed retroactive(30s)"],
    )
    clock = SimulatedWallClock(start=1_000)
    relation = TemporalRelation(schema, clock=clock)
    print(relation)

    # -- insert samples: measured first, stored >= 30s later ---------------
    for measured, celsius in ((940, 21.5), (960, 22.1), (965, 22.4)):
        relation.insert("s1", Timestamp(measured), {"sensor": "s1", "celsius": celsius})
        clock.advance(Duration(60))
    print(f"\nstored {len(relation)} samples; current state:")
    for element in relation.current():
        print(f"  {element}")

    # -- the declared specialization is enforced ----------------------------
    try:
        relation.insert("s1", clock.peek() + Duration(999), {"sensor": "s1", "celsius": 0.0})
    except ConstraintViolation as violation:
        print(f"\nrejected future-valid insert:\n  {violation}")

    # -- a correction: modification = logical delete + insert ---------------
    first = relation.all_elements()[0]
    fixed = relation.modify(first.element_surrogate, attributes={"celsius": 21.7})
    print(f"\ncorrected element #{first.element_surrogate} -> #{fixed.element_surrogate}")

    # -- the three query classes of Section 1 -------------------------------
    print("\ncurrent query (what is recorded now):")
    for element in relation.current():
        print(f"  vt={element.vt!r}  celsius={element.attributes['celsius']}")

    print("\nhistorical query (what was true in reality at vt=940):")
    for element in relation.valid_at(Timestamp(940)):
        print(f"  celsius={element.attributes['celsius']}  (corrected value)")

    rollback_tt = Timestamp(1_005)
    print(f"\nrollback query (what the database said at tt={rollback_tt.ticks}):")
    for element in relation.as_of(rollback_tt):
        print(f"  celsius={element.attributes['celsius']}  (pre-correction value)")

    # -- inference: recover the semantics from the data ----------------------
    report = classify(relation.all_elements())
    print("\ninferred specializations (tightest fit):")
    for spec in report.specializations():
        print(f"  * {spec.name}")


if __name__ == "__main__":
    main()
