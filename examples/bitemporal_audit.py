"""Bitemporal auditing: rollback vs. reality on the accounting ledger.

The strongly bounded ledger of Section 3.1 ("the current month's
transactions ... corrections ... as compensating transactions") is the
classic audit scenario: *what did the books say on date X about date
Y?* vs *what do we now believe was true on date Y?*.  This example
exercises bitemporal slices, the backlog/operation-log view, and
snapshot-cached rollback on a relation with live corrections.

Run:  python examples/bitemporal_audit.py
"""

from repro import Planner, Scan, Timestamp
from repro.query import BitemporalSlice, Rollback, ValidTimeslice
from repro.storage.snapshot import SnapshotCache
from repro.workloads import generate_ledger

DAY = 86_400


def main() -> None:
    workload = generate_ledger(entries=400, correction_rate=0.25, seed=7)
    relation = workload.relation
    print(f"ledger: {workload.description}; {len(relation)} entries\n")

    elements = relation.all_elements()
    probe = elements[len(elements) // 2]
    vt, tt = probe.vt, probe.tt_start
    planner = Planner(relation)

    # What do we NOW believe was effective on that date?
    now_view = planner.plan(ValidTimeslice(Scan(relation), vt)).execute()
    # What did the books say AT THE TIME about that date?
    then_view = planner.plan(BitemporalSlice(Scan(relation), vt=vt, tt=tt)).execute()
    print(f"effective date vt={vt.ticks}s:")
    print(f"  believed now:              {len(now_view)} entry/ies")
    print(f"  believed at tt={tt.ticks}s: {len(then_view)} entry/ies")

    # The full historical state at closing time of an early "day".
    closing = Timestamp(5 * DAY)
    state = planner.plan(Rollback(Scan(relation), closing)).execute()
    total = sum(e.attributes["amount"] for e in state)
    print(f"\nrollback to tt={closing.ticks}s: {len(state)} entries, balance {total}")

    # The backlog is the audit log itself; snapshots accelerate replay.
    backlog = relation.backlog()
    cache = SnapshotCache(backlog, interval=64)
    cache.refresh()
    replayed = backlog.state_at(closing)
    cached = cache.state_at(closing)
    assert replayed == cached
    print(
        f"backlog: {len(backlog)} operations, {cache.snapshot_count} cached "
        f"snapshots; replay and snapshot rollback agree on {len(cached)} entries"
    )

    compensating = [
        e for e in relation.current() if e.attributes["kind"] == "compensating"
    ]
    print(f"\ncompensating corrections recorded: {len(compensating)}")


if __name__ == "__main__":
    main()
