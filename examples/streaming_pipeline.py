"""A two-stage temporal pipeline: flows, freshness bounds, drift, TQL.

This exercises the extensions beyond the paper's single-relation
taxonomy (its declared "subject of a later paper"): facts flow from a
raw monitoring relation into a derived relation, carrying the source
transaction time as an extra time dimension; a FlowLagBounded
specialization enforces end-to-end freshness; a DriftMonitor watches
how close live traffic comes to the declared bounds; TQL queries the
catalog.

Run:  python examples/streaming_pipeline.py
"""

from repro.chronos import Duration, Timestamp
from repro.database import TemporalDatabase
from repro.design.drift import DriftMonitor
from repro.flow import FlowLagBounded, FlowProcessor
from repro.relation.schema import TemporalSchema
from repro.workloads import generate_monitoring


def main() -> None:
    # Stage 1: the raw plant-temperature relation (paper's example).
    workload = generate_monitoring(sensors=4, samples_per_sensor=200)
    raw = workload.relation
    database = TemporalDatabase()
    database.attach(raw)
    print(f"raw: {workload.description} -> {len(raw)} elements")

    # Stage 2: a derived relation of warm readings, fed by a flow with a
    # declared end-to-end freshness bound.
    def warm_only(element):
        if element.attributes["celsius"] < 25.0:
            return None
        return element.object_surrogate, element.vt, {
            "celsius": element.attributes["celsius"]
        }

    def make_target(name, bound):
        schema = TemporalSchema(
            name=name,
            time_varying=("celsius",),
            user_times=("source_tt",),
            specializations=[FlowLagBounded(bound)],
        )
        target = database.create_relation(schema)
        target.clock = raw.clock  # share the plant's clock
        return target

    # A 10-minute bound cannot absorb a bulk backfill of hours-old
    # history: the very first stale element is rejected. That is the
    # freshness guarantee doing its job.
    from repro.core.constraints import ConstraintViolation

    strict_target = make_target("warm_readings_strict", Duration(600))
    try:
        FlowProcessor(raw, strict_target, transform=warm_only).propagate()
    except ConstraintViolation as violation:
        print(f"flow: 10-minute freshness bound rejected the backfill:\n      {violation}")
    database.drop_relation("warm_readings_strict")

    # A bound sized for the backfill window lets the batch through.
    derived = make_target("warm_readings", Duration(1, "day"))
    flow = FlowProcessor(raw, derived, transform=warm_only)
    produced = flow.propagate()
    print(f"flow: propagated {len(produced)} warm readings "
          f"(high-water tt = {flow.high_water_mark!r})")
    lag = produced[-1].tt_start - produced[-1].user_times["source_tt"]
    print(f"      last derived element lags its source by {lag!r}")

    # Drift: how close does raw traffic come to the declared 30-55s band?
    declared = raw.schema.specializations[-1]  # delayed strongly retro bounded
    monitor = DriftMonitor(declared.region(), window=256)
    monitor.observe_all(raw.all_elements()[-256:])
    report = monitor.report()
    print(
        f"drift: utilization lower={report.lower_utilization:.2f} "
        f"upper={report.upper_utilization:.2f} violations={report.violations} "
        f"alert={report.alert(threshold=0.95)}"
    )

    # TQL over the catalog.
    print("\nTQL over the catalog:")
    hot = database.execute(
        "SELECT celsius FROM warm_readings WHERE celsius >= 29"
    )
    print(f"  warm_readings with celsius >= 29: {len(hot)} rows")
    probe = raw.all_elements()[100].vt
    slice_rows = database.execute(
        f"SELECT sensor, celsius FROM plant_temperatures VALID AT {probe.ticks}s"
    )
    print(f"  plant_temperatures VALID AT {probe.ticks}s: {slice_rows}")
    print(f"\ncatalog: {database}")


if __name__ == "__main__":
    main()
