"""A design session: from sample data to schema declarations.

Plays the role the paper assigns to the taxonomy -- a *database design*
vocabulary.  For each of the paper's running examples we generate a
sample, let the :class:`repro.design.Advisor` infer the most specific
specializations, and print the recommended declarations together with
the storage/planner payoffs they unlock.  The payroll deposits sample
demonstrates *determined* detection: the valid time turns out to be a
pure function of the transaction time ("valid from the next 8:00
a.m."), so it need not be stored at all.

Run:  python examples/payroll_design_session.py
"""

from repro.design import Advisor, render_recommendation
from repro.workloads import (
    generate_assignments,
    generate_excavation,
    generate_ledger,
    generate_orders,
    generate_payroll,
)
from repro.workloads.payroll import generate_determined_deposits


def main() -> None:
    advisor = Advisor(margin=0.5)
    sessions = [
        ("direct_deposits (payroll tape)", generate_payroll(employees=8, months=12)),
        ("deposits (next business morning)", generate_determined_deposits(deposits=150)),
        ("ledger (current month accounting)", generate_ledger(entries=200)),
        ("orders (30-day pending horizon)", generate_orders(orders=200)),
        ("excavation (archeology)", generate_excavation(strata=40)),
        ("assignments (weekly, weekend entry)", generate_assignments(weeks=20)),
    ]
    for name, workload in sessions:
        recommendation = advisor.recommend_for_relation(workload.relation)
        print(render_recommendation(recommendation, name))
        print()

    # The deposits relation is determined: show the recovered mapping.
    deposits = generate_determined_deposits(deposits=150)
    recommendation = advisor.recommend_for_relation(deposits.relation)
    determined = [spec for spec in recommendation.declare if spec.name == "determined"]
    if determined:
        print(f"recovered mapping function: {determined[0].mapping.name}")


if __name__ == "__main__":
    main()
