"""A tour of the taxonomy: the paper's figures, regenerated on stdout.

* Figure 1 -- the offset regions of the isolated-event specializations
  and the Section 3.1 completeness enumeration (11 + general);
* Figures 2-5 -- the four generalization/specialization lattices as
  ASCII diagrams and GraphViz DOT;
* Allen's thirteen relations with a sample composition.

Run:  python examples/taxonomy_tour.py
"""

from repro.chronos import AllenRelation, Interval, Timestamp, allen_relation, compose
from repro.core.taxonomy import (
    ALL_LATTICES,
    EVENT_ISOLATED_LATTICE,
    enumerate_regions,
)
from repro.design.report import render_lattice_ascii, render_region_panel


def main() -> None:
    print("Figure 1: the region of each isolated-event specialization")
    print("(offsets d = vt - tt, microseconds; bounds from the Figure 2")
    print("representative instances with Dt small = 10s, large = 30s)\n")
    for name in EVENT_ISOLATED_LATTICE.topological_order():
        region = EVENT_ISOLATED_LATTICE.instance(name).region()
        print(f"  {name:<42} {region}")

    print("\nFigure 1 panels (shaded = allowed stamp pairs; vt up, tt right):\n")
    for name in ("retroactive", "predictive", "strongly bounded", "degenerate"):
        print(name)
        print(render_region_panel(EVENT_ISOLATED_LATTICE.instance(name).region(), size=9))
        print()

    shapes = enumerate_regions()
    one_line = sum(1 for shape in shapes.values() if shape.line_count == 1)
    two_line = sum(1 for shape in shapes.values() if shape.line_count == 2)
    print(
        f"\ncompleteness (Section 3.1): {one_line} one-line + {two_line} two-line "
        f"+ general = {len(shapes)} region shapes; plus the degenerate point "
        "region = the 13 nodes of Figure 2"
    )

    for lattice in ALL_LATTICES:
        print()
        print(render_lattice_ascii(lattice))

    print("\nAllen's thirteen interval relations (Section 3.4, [All83]):")
    a = Interval(Timestamp(0), Timestamp(4))
    b = Interval(Timestamp(2), Timestamp(6))
    print(f"  [0,4) vs [2,6): {allen_relation(a, b).value}")
    composed = compose(AllenRelation.OVERLAPS, AllenRelation.MEETS)
    names = ", ".join(sorted(rel.value for rel in composed))
    print(f"  compose(overlaps, meets) = {{{names}}}")

    print("\nGraphViz source for Figure 2 (pipe into `dot -Tpng`):\n")
    print(EVENT_ISOLATED_LATTICE.to_dot())


if __name__ == "__main__":
    main()
