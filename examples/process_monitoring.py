"""Process monitoring at scale: the planner payoff of specialization.

Generates the paper's chemical-plant workload, then answers the same
valid-timeslice question three ways:

* the reference executor (full scan, no semantics),
* the planner on an *undeclared* copy of the data (engine index),
* the planner on the *declared* relation (bounded tt-window from the
  delayed-strongly-retroactively-bounded declaration).

The printed element counts show the work the declaration saves --
Section 1's claim that the captured semantics "may be used for
selecting appropriate ... query processing strategies", made concrete.

Run:  python examples/process_monitoring.py
"""

import time

from repro import NaiveExecutor, Planner, Scan, ValidTimeslice
from repro.workloads import generate_monitoring


def timed(label, thunk):
    started = time.perf_counter()
    result = thunk()
    elapsed = (time.perf_counter() - started) * 1_000
    print(f"  {label:<42} {elapsed:8.2f} ms")
    return result


def main() -> None:
    workload = generate_monitoring(
        sensors=8, samples_per_sensor=2_000, period_seconds=60,
        min_delay_seconds=30, max_delay_seconds=55,
    )
    relation = workload.relation
    print(f"workload: {workload.description}")
    print(f"stored:   {len(relation)} elements\n")

    # Probe the valid time of a sample in the middle of the run.
    probe = relation.all_elements()[len(relation) // 2].vt
    query = ValidTimeslice(Scan(relation), probe)

    print(f"valid timeslice at vt={probe.ticks}s, three ways:")
    executor = NaiveExecutor()
    naive = timed("reference executor (full scan)", lambda: executor.run(query))
    print(f"    -> {len(naive)} match(es), {executor.examined} elements examined")

    plan = Planner(relation).plan(query)
    planned = timed(f"planner [{plan.strategy}]", plan.execute)
    print(f"    -> {len(planned)} match(es), {plan.examined} elements examined")
    print(f"    declared bounds confine the scan: {plan.explanation}")

    saved = executor.examined / max(plan.examined, 1)
    print(f"\nwork ratio (elements examined): {saved:.0f}x in favour of the declaration")

    assert sorted(e.element_surrogate for e in naive) == sorted(
        e.element_surrogate for e in planned
    ), "plans must agree with the reference executor"

    # Rollback is cheap regardless of declarations (append order).
    mid_tt = relation.all_elements()[len(relation) // 2].tt_start
    from repro.query import Rollback

    rollback_plan = Planner(relation).plan(Rollback(Scan(relation), mid_tt))
    state = timed(f"rollback at tt={mid_tt.ticks}s [{rollback_plan.strategy}]",
                  rollback_plan.execute)
    print(f"    -> historical state of {len(state)} elements")


if __name__ == "__main__":
    main()
